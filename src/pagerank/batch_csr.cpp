#include "pagerank/batch_csr.hpp"

#include <array>
#include <atomic>
#include <cassert>

#include "obs/counters.hpp"
#include "util/check.hpp"

namespace pmpr {

namespace {

using RunMask = std::array<std::uint64_t, mask_words_for(kMaxSpmmLanes)>;

/// Conservative chunk prune: the chunk's entry time extent misses
/// [prune_lo, prune_hi] entirely, so every lanes_containing_into /
/// window-membership test on its events would come back empty. Empty
/// chunks (extent fields zeroed) prune trivially.
bool chunk_pruned(const io::ChunkMeta& m, Timestamp prune_lo,
                  Timestamp prune_hi) {
  return m.num_entries == 0 || m.time_max < prune_lo || m.time_min > prune_hi;
}

/// Per-pass decode/prune tallies, accumulated locally and flushed to the
/// obs counters once per compile (hot-loop discipline: never count() per
/// chunk).
struct ChunkTally {
  std::size_t decoded = 0;
  std::size_t pruned = 0;
  std::size_t bytes = 0;  ///< Encoded bytes of the decoded chunks.
};

/// Pass A of the SpMM compile for ONE row given as col/time spans: run
/// compression that counts the surviving (mask != 0) runs and scatters
/// degrees and activity exactly like compute_spmm_state. Shared by the
/// raw-CSR sweep and the compressed-chunk streaming sweep, which is what
/// makes the two paths bit-identical by construction.
///
/// Atomicity ownership (audited for the serial/parallel split; the
/// TSan-gated stress in tests/pagerank/batch_csr_parallel_test.cpp guards
/// it):
///   * the returned entry count — consumed only by the thread sweeping
///     row v, in both paths. Never atomic.
///   * state.out_degree[u * lanes + k] and state.active_mask[u ...] —
///     cross-row scatter targets: row v bumps arbitrary u's slots. The
///     parallel path (Atomic = true) must use std::atomic_ref for *every*
///     one of these; the serial path (Atomic = false) owns the whole array
///     on one thread and uses plain increments — the two `if constexpr`
///     arms below are the same write routed per path, not a mixed mode.
///   * state.active_mask[v ...] (the row's own activity) is also a shared
///     slot: other rows scatter into v as a neighbor, so the parallel path
///     ORs it atomically too.
template <bool Atomic>
std::size_t scatter_row(const WindowSpec& spec, const SpmmBatch& batch,
                        SpmmWindowState& state, std::size_t v,
                        std::span<const VertexId> cols,
                        std::span<const Timestamp> times) {
  const std::size_t lanes = batch.lanes;
  const std::size_t words = state.mask_words;
  RunMask v_mask{};
  std::size_t entries = 0;
  std::size_t i = 0;
  while (i < cols.size()) {
    const VertexId u = cols[i];
    RunMask run_mask{};
    while (i < cols.size() && cols[i] == u) {
      lanes_containing_into(spec, batch, times[i], run_mask.data());
      ++i;
    }
    if (!mask_any(run_mask.data(), words)) continue;
    ++entries;
    for_each_set_lane(run_mask.data(), words, [&](std::size_t k) {
      if constexpr (Atomic) {
        std::atomic_ref<std::uint32_t> deg(state.out_degree[u * lanes + k]);
        // relaxed: pure commutative count; published by the join.
        deg.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++state.out_degree[u * lanes + k];
      }
    });
    for (std::size_t w = 0; w < words; ++w) {
      v_mask[w] |= run_mask[w];
      if (run_mask[w] == 0) continue;
      if constexpr (Atomic) {
        std::atomic_ref<std::uint64_t> am(state.active_mask[u * words + w]);
        // relaxed: commutative bit-set; published by the join.
        am.fetch_or(run_mask[w], std::memory_order_relaxed);
      } else {
        state.active_mask[u * words + w] |= run_mask[w];
      }
    }
  }
  for (std::size_t w = 0; w < words; ++w) {
    if (v_mask[w] == 0) continue;
    if constexpr (Atomic) {
      std::atomic_ref<std::uint64_t> am(state.active_mask[v * words + w]);
      // relaxed: commutative bit-set; published by the join.
      am.fetch_or(v_mask[w], std::memory_order_relaxed);
    } else {
      state.active_mask[v * words + w] |= v_mask[w];
    }
  }
  return entries;
}

/// Pass A over a raw part: sweep rows [lo, hi) of the in-CSR.
template <bool Atomic>
void count_and_scatter_rows(const MultiWindowGraph& part,
                            const WindowSpec& spec, const SpmmBatch& batch,
                            SpmmWindowState& state, CompiledBatchCsr& out,
                            std::size_t lo, std::size_t hi) {
  for (std::size_t v = lo; v < hi; ++v) {
    out.row_ptr[v + 1] = scatter_row<Atomic>(
        spec, batch, state, v, part.in.row_cols(static_cast<VertexId>(v)),
        part.in.row_times(static_cast<VertexId>(v)));
  }
}

/// One row of `scratch` (chunk-local index r) as col/time spans.
std::span<const VertexId> scratch_cols(const io::DecodeScratch& scratch,
                                       std::size_t r) {
  return {scratch.cols.data() + scratch.row_ptr[r],
          scratch.cols.data() + scratch.row_ptr[r + 1]};
}
std::span<const Timestamp> scratch_times(const io::DecodeScratch& scratch,
                                         std::size_t r) {
  return {scratch.times.data() + scratch.row_ptr[r],
          scratch.times.data() + scratch.row_ptr[r + 1]};
}

/// Pass A over a compressed part: sweep chunks [chunk_lo, chunk_hi),
/// decoding each non-pruned chunk into `scratch` and scattering its rows.
/// Pruned chunks keep their rows' zero counts (row_ptr was zero-assigned),
/// which matches the raw path exactly — an out-of-extent event joins no
/// lane. Rows never split across chunks, so chunk-parallel is row-parallel.
template <bool Atomic>
void count_and_scatter_chunks(const io::CompressedTemporalCsr& packed,
                              const WindowSpec& spec, const SpmmBatch& batch,
                              Timestamp prune_lo, Timestamp prune_hi,
                              SpmmWindowState& state, CompiledBatchCsr& out,
                              std::size_t chunk_lo, std::size_t chunk_hi,
                              io::DecodeScratch& scratch, ChunkTally& tally) {
  for (std::size_t c = chunk_lo; c < chunk_hi; ++c) {
    const io::ChunkMeta& m = packed.chunk(c);
    if (chunk_pruned(m, prune_lo, prune_hi)) {
      ++tally.pruned;
      continue;
    }
    ++tally.decoded;
    tally.bytes += m.byte_size;
    packed.decode_chunk(c, scratch);
    for (std::size_t r = 0; r < m.num_rows; ++r) {
      const std::size_t v = m.first_row + r;
      out.row_ptr[v + 1] = scatter_row<Atomic>(spec, batch, state, v,
                                               scratch_cols(scratch, r),
                                               scratch_times(scratch, r));
    }
  }
}

/// Pass B for one row: re-runs the (row-local) run scan and fills nbr/mask
/// at the prefix-summed offsets. No cross-row writes, so no atomics in
/// either path.
void fill_row(const WindowSpec& spec, const SpmmBatch& batch,
              CompiledBatchCsr& out, std::size_t v,
              std::span<const VertexId> cols,
              std::span<const Timestamp> times) {
  const std::size_t words = out.mask_words;
  std::size_t at = out.row_ptr[v];
  std::size_t i = 0;
  while (i < cols.size()) {
    const VertexId u = cols[i];
    RunMask run_mask{};
    while (i < cols.size() && cols[i] == u) {
      lanes_containing_into(spec, batch, times[i], run_mask.data());
      ++i;
    }
    if (!mask_any(run_mask.data(), words)) continue;
    out.nbr[at] = u;
    for (std::size_t w = 0; w < words; ++w) {
      out.mask[at * words + w] = run_mask[w];
    }
    ++at;
  }
  assert(at == out.row_ptr[v + 1]);
}

void fill_rows(const MultiWindowGraph& part, const WindowSpec& spec,
               const SpmmBatch& batch, CompiledBatchCsr& out, std::size_t lo,
               std::size_t hi) {
  for (std::size_t v = lo; v < hi; ++v) {
    fill_row(spec, batch, out, v, part.in.row_cols(static_cast<VertexId>(v)),
             part.in.row_times(static_cast<VertexId>(v)));
  }
}

/// Pass B over chunks. Must apply the same prune predicate as pass A: a
/// pruned chunk's rows counted zero entries, so row_ptr[v] == row_ptr[v+1]
/// and there is nothing to fill.
void fill_chunks(const io::CompressedTemporalCsr& packed,
                 const WindowSpec& spec, const SpmmBatch& batch,
                 Timestamp prune_lo, Timestamp prune_hi, CompiledBatchCsr& out,
                 std::size_t chunk_lo, std::size_t chunk_hi,
                 io::DecodeScratch& scratch, ChunkTally& tally) {
  for (std::size_t c = chunk_lo; c < chunk_hi; ++c) {
    const io::ChunkMeta& m = packed.chunk(c);
    if (chunk_pruned(m, prune_lo, prune_hi)) {
      ++tally.pruned;
      continue;
    }
    ++tally.decoded;
    tally.bytes += m.byte_size;
    packed.decode_chunk(c, scratch);
    for (std::size_t r = 0; r < m.num_rows; ++r) {
      fill_row(spec, batch, out, m.first_row + r, scratch_cols(scratch, r),
               scratch_times(scratch, r));
    }
  }
}

/// Shared chunk-pass driver: parallel over chunks (per-callback scratch)
/// or serial reusing the caller's scratch. `body(lo, hi, scratch, tally)`
/// runs one chunk range.
template <typename Body>
void run_chunk_pass(std::size_t num_chunks, const par::ForOptions* parallel,
                    io::DecodeScratch* scratch,
                    std::atomic<std::uint64_t>& decoded,
                    std::atomic<std::uint64_t>& pruned,
                    std::atomic<std::uint64_t>& bytes, Body&& body) {
  if (parallel != nullptr) {
    par::parallel_for_range(
        0, num_chunks, *parallel, [&](std::size_t lo, std::size_t hi) {
          io::DecodeScratch local;
          ChunkTally tally;
          body(lo, hi, local, tally);
          // relaxed: commutative tallies; published by the join.
          decoded.fetch_add(tally.decoded, std::memory_order_relaxed);
          pruned.fetch_add(tally.pruned, std::memory_order_relaxed);
          bytes.fetch_add(tally.bytes, std::memory_order_relaxed);
        });
  } else {
    io::DecodeScratch local;
    io::DecodeScratch& sc = scratch != nullptr ? *scratch : local;
    ChunkTally tally;
    body(0, num_chunks, sc, tally);
    // relaxed: single-threaded branch, nothing to order against.
    decoded.fetch_add(tally.decoded, std::memory_order_relaxed);
    pruned.fetch_add(tally.pruned, std::memory_order_relaxed);
    bytes.fetch_add(tally.bytes, std::memory_order_relaxed);
  }
}

void flush_chunk_counters(const std::atomic<std::uint64_t>& decoded,
                          const std::atomic<std::uint64_t>& pruned,
                          const std::atomic<std::uint64_t>& bytes) {
  // relaxed: callers flush after the compile's parallel-for join, which
  // already publishes every worker's tallies.
  const std::uint64_t d = decoded.load(std::memory_order_relaxed);
  const std::uint64_t p = pruned.load(std::memory_order_relaxed);
  const std::uint64_t b = bytes.load(std::memory_order_relaxed);
  if (d != 0) obs::count(obs::Counter::kChunksDecoded, d);
  if (p != 0) obs::count(obs::Counter::kChunksPruned, p);
  if (b != 0) obs::count(obs::Counter::kBytesDecoded, b);
}

}  // namespace

void compile_spmm_batch(const MultiWindowGraph& part, const WindowSpec& spec,
                        const SpmmBatch& batch, SpmmWindowState& state,
                        CompiledBatchCsr& out, const par::ForOptions* parallel,
                        io::DecodeScratch* scratch) {
  // Release-mode check (was a debug assert): with -DNDEBUG an oversized
  // batch would silently shift lane bits out of the mask words — UB plus a
  // corrupt compiled form.
  PMPR_CHECK_MSG(batch.lanes >= 1 && batch.lanes <= kMaxSpmmLanes,
                 "SpMM batch lanes " << batch.lanes << " outside [1, "
                                     << kMaxSpmmLanes << "]");
  const std::size_t n = part.num_local();
  state.resize(n, batch.lanes);
  out.lanes = batch.lanes;
  out.mask_words = state.mask_words;
  out.row_ptr.assign(n + 1, 0);
  out.active_rows.clear();
  out.dangling_rows.clear();
  out.dangling_mask.clear();

  const bool streamed = part.is_compressed();
  std::atomic<std::uint64_t> decoded{0};
  std::atomic<std::uint64_t> pruned{0};
  std::atomic<std::uint64_t> decoded_bytes{0};
  // Union of the batch's lane windows: lanes are strided windows of one
  // spec, so coverage is [start(first lane), end(last lane)].
  const Timestamp prune_lo = spec.start(batch.first_window);
  const Timestamp prune_hi = spec.end(batch.window_of_lane(batch.lanes - 1));
  if (streamed) {
    const io::CompressedTemporalCsr& packed = *part.in_compressed;
    PMPR_CHECK_MSG(packed.num_rows() == n,
                   "compressed part covers " << packed.num_rows()
                                             << " rows, local space has "
                                             << n);
    run_chunk_pass(packed.num_chunks(), parallel, scratch, decoded, pruned,
                   decoded_bytes,
                   [&](std::size_t lo, std::size_t hi,
                       io::DecodeScratch& sc, ChunkTally& tally) {
                     if (parallel != nullptr) {
                       count_and_scatter_chunks<true>(packed, spec, batch,
                                                      prune_lo, prune_hi,
                                                      state, out, lo, hi, sc,
                                                      tally);
                     } else {
                       count_and_scatter_chunks<false>(packed, spec, batch,
                                                       prune_lo, prune_hi,
                                                       state, out, lo, hi, sc,
                                                       tally);
                     }
                   });
  } else if (parallel != nullptr) {
    par::parallel_for_range(
        0, n, *parallel, [&](std::size_t lo, std::size_t hi) {
          count_and_scatter_rows<true>(part, spec, batch, state, out, lo, hi);
        });
  } else {
    count_and_scatter_rows<false>(part, spec, batch, state, out, 0, n);
  }

  // Exclusive prefix sum turns per-row counts into offsets.
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t cnt = out.row_ptr[v + 1];
    out.row_ptr[v + 1] = total += cnt;
  }
  out.nbr.resize(total);
  out.mask.resize(total * out.mask_words);

  if (streamed) {
    const io::CompressedTemporalCsr& packed = *part.in_compressed;
    run_chunk_pass(packed.num_chunks(), parallel, scratch, decoded, pruned,
                   decoded_bytes,
                   [&](std::size_t lo, std::size_t hi,
                       io::DecodeScratch& sc, ChunkTally& tally) {
                     fill_chunks(packed, spec, batch, prune_lo, prune_hi, out,
                                 lo, hi, sc, tally);
                   });
  } else if (parallel != nullptr) {
    par::parallel_for_range(0, n, *parallel,
                            [&](std::size_t lo, std::size_t hi) {
                              fill_rows(part, spec, batch, out, lo, hi);
                            });
  } else {
    fill_rows(part, spec, batch, out, 0, n);
  }
  flush_chunk_counters(decoded, pruned, decoded_bytes);

  // Compaction lists + per-lane population (needs the complete degrees).
  const std::size_t lanes = batch.lanes;
  const std::size_t words = out.mask_words;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t* m = state.mask_of(v);
    if (!mask_any(m, words)) continue;
    out.active_rows.push_back(static_cast<VertexId>(v));
    RunMask dangling{};
    bool any_dangling = false;
    for_each_set_lane(m, words, [&](std::size_t k) {
      ++state.num_active[k];
      if (state.out_degree[v * lanes + k] == 0) {
        mask_set(dangling.data(), k);
        any_dangling = true;
      }
    });
    if (any_dangling) {
      out.dangling_rows.push_back(static_cast<VertexId>(v));
      for (std::size_t w = 0; w < words; ++w) {
        out.dangling_mask.push_back(dangling[w]);
      }
    }
  }
  out.charge.reset(obs::MemTag::kCompiledKernel, out.memory_bytes());
}

namespace {

/// SpMV pass A for one row given as spans (raw and streamed paths share
/// it, same reasoning as scatter_row).
template <bool Atomic>
std::size_t scatter_window_row(Timestamp ts, Timestamp te, WindowState& state,
                               std::size_t v, std::span<const VertexId> cols,
                               std::span<const Timestamp> times) {
  std::size_t entries = 0;
  for_each_active_neighbor_in_row(cols, times, ts, te, [&](VertexId u) {
    ++entries;
    if constexpr (Atomic) {
      std::atomic_ref<std::uint32_t> deg(state.out_degree[u]);
      // relaxed: pure commutative count; published by the join.
      deg.fetch_add(1, std::memory_order_relaxed);
      std::atomic_ref<std::uint8_t> act(state.active[u]);
      // relaxed: idempotent flag; published by the join.
      act.store(1, std::memory_order_relaxed);
    } else {
      ++state.out_degree[u];
      state.active[u] = 1;
    }
  });
  if (entries > 0) {
    if constexpr (Atomic) {
      std::atomic_ref<std::uint8_t> act(state.active[v]);
      // relaxed: idempotent flag; published by the join.
      act.store(1, std::memory_order_relaxed);
    } else {
      state.active[v] = 1;
    }
  }
  return entries;
}

template <bool Atomic>
void count_and_scatter_window_rows(const MultiWindowGraph& part, Timestamp ts,
                                   Timestamp te, WindowState& state,
                                   CompiledWindowCsr& out, std::size_t lo,
                                   std::size_t hi) {
  for (std::size_t v = lo; v < hi; ++v) {
    out.row_ptr[v + 1] = scatter_window_row<Atomic>(
        ts, te, state, v, part.in.row_cols(static_cast<VertexId>(v)),
        part.in.row_times(static_cast<VertexId>(v)));
  }
}

template <bool Atomic>
void count_and_scatter_window_chunks(const io::CompressedTemporalCsr& packed,
                                     Timestamp ts, Timestamp te,
                                     WindowState& state,
                                     CompiledWindowCsr& out,
                                     std::size_t chunk_lo,
                                     std::size_t chunk_hi,
                                     io::DecodeScratch& scratch,
                                     ChunkTally& tally) {
  for (std::size_t c = chunk_lo; c < chunk_hi; ++c) {
    const io::ChunkMeta& m = packed.chunk(c);
    if (chunk_pruned(m, ts, te)) {
      ++tally.pruned;
      continue;
    }
    ++tally.decoded;
    tally.bytes += m.byte_size;
    packed.decode_chunk(c, scratch);
    for (std::size_t r = 0; r < m.num_rows; ++r) {
      const std::size_t v = m.first_row + r;
      out.row_ptr[v + 1] = scatter_window_row<Atomic>(
          ts, te, state, v, scratch_cols(scratch, r),
          scratch_times(scratch, r));
    }
  }
}

void fill_window_row(Timestamp ts, Timestamp te, CompiledWindowCsr& out,
                     std::size_t v, std::span<const VertexId> cols,
                     std::span<const Timestamp> times) {
  std::size_t at = out.row_ptr[v];
  for_each_active_neighbor_in_row(cols, times, ts, te,
                                  [&](VertexId u) { out.nbr[at++] = u; });
  assert(at == out.row_ptr[v + 1]);
  (void)at;
}

void fill_window_rows(const MultiWindowGraph& part, Timestamp ts, Timestamp te,
                      CompiledWindowCsr& out, std::size_t lo, std::size_t hi) {
  for (std::size_t v = lo; v < hi; ++v) {
    fill_window_row(ts, te, out, v, part.in.row_cols(static_cast<VertexId>(v)),
                    part.in.row_times(static_cast<VertexId>(v)));
  }
}

void fill_window_chunks(const io::CompressedTemporalCsr& packed, Timestamp ts,
                        Timestamp te, CompiledWindowCsr& out,
                        std::size_t chunk_lo, std::size_t chunk_hi,
                        io::DecodeScratch& scratch, ChunkTally& tally) {
  for (std::size_t c = chunk_lo; c < chunk_hi; ++c) {
    const io::ChunkMeta& m = packed.chunk(c);
    if (chunk_pruned(m, ts, te)) {
      ++tally.pruned;
      continue;
    }
    ++tally.decoded;
    tally.bytes += m.byte_size;
    packed.decode_chunk(c, scratch);
    for (std::size_t r = 0; r < m.num_rows; ++r) {
      fill_window_row(ts, te, out, m.first_row + r, scratch_cols(scratch, r),
                      scratch_times(scratch, r));
    }
  }
}

}  // namespace

void compile_window(const MultiWindowGraph& part, Timestamp ts, Timestamp te,
                    WindowState& state, CompiledWindowCsr& out,
                    const par::ForOptions* parallel,
                    io::DecodeScratch* scratch) {
  const std::size_t n = part.num_local();
  state.resize(n);
  out.row_ptr.assign(n + 1, 0);
  out.active_rows.clear();
  out.dangling_rows.clear();

  const bool streamed = part.is_compressed();
  std::atomic<std::uint64_t> decoded{0};
  std::atomic<std::uint64_t> pruned{0};
  std::atomic<std::uint64_t> decoded_bytes{0};
  if (streamed) {
    const io::CompressedTemporalCsr& packed = *part.in_compressed;
    PMPR_CHECK_MSG(packed.num_rows() == n,
                   "compressed part covers " << packed.num_rows()
                                             << " rows, local space has "
                                             << n);
    run_chunk_pass(packed.num_chunks(), parallel, scratch, decoded, pruned,
                   decoded_bytes,
                   [&](std::size_t lo, std::size_t hi,
                       io::DecodeScratch& sc, ChunkTally& tally) {
                     if (parallel != nullptr) {
                       count_and_scatter_window_chunks<true>(
                           packed, ts, te, state, out, lo, hi, sc, tally);
                     } else {
                       count_and_scatter_window_chunks<false>(
                           packed, ts, te, state, out, lo, hi, sc, tally);
                     }
                   });
  } else if (parallel != nullptr) {
    par::parallel_for_range(
        0, n, *parallel, [&](std::size_t lo, std::size_t hi) {
          count_and_scatter_window_rows<true>(part, ts, te, state, out, lo,
                                              hi);
        });
  } else {
    count_and_scatter_window_rows<false>(part, ts, te, state, out, 0, n);
  }

  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t cnt = out.row_ptr[v + 1];
    out.row_ptr[v + 1] = total += cnt;
  }
  out.nbr.resize(total);

  if (streamed) {
    const io::CompressedTemporalCsr& packed = *part.in_compressed;
    run_chunk_pass(packed.num_chunks(), parallel, scratch, decoded, pruned,
                   decoded_bytes,
                   [&](std::size_t lo, std::size_t hi,
                       io::DecodeScratch& sc, ChunkTally& tally) {
                     fill_window_chunks(packed, ts, te, out, lo, hi, sc,
                                        tally);
                   });
  } else if (parallel != nullptr) {
    par::parallel_for_range(0, n, *parallel,
                            [&](std::size_t lo, std::size_t hi) {
                              fill_window_rows(part, ts, te, out, lo, hi);
                            });
  } else {
    fill_window_rows(part, ts, te, out, 0, n);
  }
  flush_chunk_counters(decoded, pruned, decoded_bytes);

  for (std::size_t v = 0; v < n; ++v) {
    if (state.active[v] == 0) continue;
    ++state.num_active;
    out.active_rows.push_back(static_cast<VertexId>(v));
    if (state.out_degree[v] == 0) {
      out.dangling_rows.push_back(static_cast<VertexId>(v));
    }
  }
  out.charge.reset(obs::MemTag::kCompiledKernel, out.memory_bytes());
}

}  // namespace pmpr
