#include "pagerank/batch_csr.hpp"

#include <array>
#include <atomic>
#include <cassert>

#include "util/check.hpp"

namespace pmpr {

namespace {

using RunMask = std::array<std::uint64_t, mask_words_for(kMaxSpmmLanes)>;

/// Pass A of the SpMM compile: per-row run compression that counts the
/// surviving (mask != 0) runs into row_ptr[v + 1] and scatters degrees and
/// activity exactly like compute_spmm_state.
///
/// Atomicity ownership (audited for the serial/parallel split; the
/// TSan-gated stress in tests/pagerank/batch_csr_parallel_test.cpp guards
/// it):
///   * row_ptr[v + 1] — written only by the thread sweeping row v, in both
///     paths. Never atomic.
///   * state.out_degree[u * lanes + k] and state.active_mask[u ...] —
///     cross-row scatter targets: row v bumps arbitrary u's slots. The
///     parallel path (Atomic = true) must use std::atomic_ref for *every*
///     one of these; the serial path (Atomic = false) owns the whole array
///     on one thread and uses plain increments — the two `if constexpr`
///     arms below are the same write routed per path, not a mixed mode.
///   * state.active_mask[v ...] (the row's own activity) is also a shared
///     slot: other rows scatter into v as a neighbor, so the parallel path
///     ORs it atomically too.
template <bool Atomic>
void count_and_scatter_rows(const MultiWindowGraph& part,
                            const WindowSpec& spec, const SpmmBatch& batch,
                            SpmmWindowState& state, CompiledBatchCsr& out,
                            std::size_t lo, std::size_t hi) {
  const std::size_t lanes = batch.lanes;
  const std::size_t words = state.mask_words;
  for (std::size_t v = lo; v < hi; ++v) {
    const auto cols = part.in.row_cols(static_cast<VertexId>(v));
    const auto times = part.in.row_times(static_cast<VertexId>(v));
    RunMask v_mask{};
    std::size_t entries = 0;
    std::size_t i = 0;
    while (i < cols.size()) {
      const VertexId u = cols[i];
      RunMask run_mask{};
      while (i < cols.size() && cols[i] == u) {
        lanes_containing_into(spec, batch, times[i], run_mask.data());
        ++i;
      }
      if (!mask_any(run_mask.data(), words)) continue;
      ++entries;
      for_each_set_lane(run_mask.data(), words, [&](std::size_t k) {
        if constexpr (Atomic) {
          std::atomic_ref<std::uint32_t> deg(state.out_degree[u * lanes + k]);
          // relaxed: pure commutative count; published by the join.
          deg.fetch_add(1, std::memory_order_relaxed);
        } else {
          ++state.out_degree[u * lanes + k];
        }
      });
      for (std::size_t w = 0; w < words; ++w) {
        v_mask[w] |= run_mask[w];
        if (run_mask[w] == 0) continue;
        if constexpr (Atomic) {
          std::atomic_ref<std::uint64_t> am(
              state.active_mask[u * words + w]);
          // relaxed: commutative bit-set; published by the join.
          am.fetch_or(run_mask[w], std::memory_order_relaxed);
        } else {
          state.active_mask[u * words + w] |= run_mask[w];
        }
      }
    }
    for (std::size_t w = 0; w < words; ++w) {
      if (v_mask[w] == 0) continue;
      if constexpr (Atomic) {
        std::atomic_ref<std::uint64_t> am(state.active_mask[v * words + w]);
        // relaxed: commutative bit-set; published by the join.
        am.fetch_or(v_mask[w], std::memory_order_relaxed);
      } else {
        state.active_mask[v * words + w] |= v_mask[w];
      }
    }
    out.row_ptr[v + 1] = entries;
  }
}

/// Pass B: re-runs the (row-local) run scan and fills nbr/mask at the
/// prefix-summed offsets. No cross-row writes, so no atomics in either
/// path.
void fill_rows(const MultiWindowGraph& part, const WindowSpec& spec,
               const SpmmBatch& batch, CompiledBatchCsr& out, std::size_t lo,
               std::size_t hi) {
  const std::size_t words = out.mask_words;
  for (std::size_t v = lo; v < hi; ++v) {
    const auto cols = part.in.row_cols(static_cast<VertexId>(v));
    const auto times = part.in.row_times(static_cast<VertexId>(v));
    std::size_t at = out.row_ptr[v];
    std::size_t i = 0;
    while (i < cols.size()) {
      const VertexId u = cols[i];
      RunMask run_mask{};
      while (i < cols.size() && cols[i] == u) {
        lanes_containing_into(spec, batch, times[i], run_mask.data());
        ++i;
      }
      if (!mask_any(run_mask.data(), words)) continue;
      out.nbr[at] = u;
      for (std::size_t w = 0; w < words; ++w) {
        out.mask[at * words + w] = run_mask[w];
      }
      ++at;
    }
    assert(at == out.row_ptr[v + 1]);
  }
}

}  // namespace

void compile_spmm_batch(const MultiWindowGraph& part, const WindowSpec& spec,
                        const SpmmBatch& batch, SpmmWindowState& state,
                        CompiledBatchCsr& out,
                        const par::ForOptions* parallel) {
  // Release-mode check (was a debug assert): with -DNDEBUG an oversized
  // batch would silently shift lane bits out of the mask words — UB plus a
  // corrupt compiled form.
  PMPR_CHECK_MSG(batch.lanes >= 1 && batch.lanes <= kMaxSpmmLanes,
                 "SpMM batch lanes " << batch.lanes << " outside [1, "
                                     << kMaxSpmmLanes << "]");
  const std::size_t n = part.num_local();
  state.resize(n, batch.lanes);
  out.lanes = batch.lanes;
  out.mask_words = state.mask_words;
  out.row_ptr.assign(n + 1, 0);
  out.active_rows.clear();
  out.dangling_rows.clear();
  out.dangling_mask.clear();

  if (parallel != nullptr) {
    par::parallel_for_range(
        0, n, *parallel, [&](std::size_t lo, std::size_t hi) {
          count_and_scatter_rows<true>(part, spec, batch, state, out, lo, hi);
        });
  } else {
    count_and_scatter_rows<false>(part, spec, batch, state, out, 0, n);
  }

  // Exclusive prefix sum turns per-row counts into offsets.
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t cnt = out.row_ptr[v + 1];
    out.row_ptr[v + 1] = total += cnt;
  }
  out.nbr.resize(total);
  out.mask.resize(total * out.mask_words);

  if (parallel != nullptr) {
    par::parallel_for_range(0, n, *parallel,
                            [&](std::size_t lo, std::size_t hi) {
                              fill_rows(part, spec, batch, out, lo, hi);
                            });
  } else {
    fill_rows(part, spec, batch, out, 0, n);
  }

  // Compaction lists + per-lane population (needs the complete degrees).
  const std::size_t lanes = batch.lanes;
  const std::size_t words = out.mask_words;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t* m = state.mask_of(v);
    if (!mask_any(m, words)) continue;
    out.active_rows.push_back(static_cast<VertexId>(v));
    RunMask dangling{};
    bool any_dangling = false;
    for_each_set_lane(m, words, [&](std::size_t k) {
      ++state.num_active[k];
      if (state.out_degree[v * lanes + k] == 0) {
        mask_set(dangling.data(), k);
        any_dangling = true;
      }
    });
    if (any_dangling) {
      out.dangling_rows.push_back(static_cast<VertexId>(v));
      for (std::size_t w = 0; w < words; ++w) {
        out.dangling_mask.push_back(dangling[w]);
      }
    }
  }
}

namespace {

template <bool Atomic>
void count_and_scatter_window_rows(const MultiWindowGraph& part, Timestamp ts,
                                   Timestamp te, WindowState& state,
                                   CompiledWindowCsr& out, std::size_t lo,
                                   std::size_t hi) {
  for (std::size_t v = lo; v < hi; ++v) {
    std::size_t entries = 0;
    part.in.for_each_active_neighbor(
        static_cast<VertexId>(v), ts, te, [&](VertexId u) {
          ++entries;
          if constexpr (Atomic) {
            std::atomic_ref<std::uint32_t> deg(state.out_degree[u]);
            // relaxed: pure commutative count; published by the join.
            deg.fetch_add(1, std::memory_order_relaxed);
            std::atomic_ref<std::uint8_t> act(state.active[u]);
            // relaxed: idempotent flag; published by the join.
            act.store(1, std::memory_order_relaxed);
          } else {
            ++state.out_degree[u];
            state.active[u] = 1;
          }
        });
    if (entries > 0) {
      if constexpr (Atomic) {
        std::atomic_ref<std::uint8_t> act(state.active[v]);
        // relaxed: idempotent flag; published by the join.
        act.store(1, std::memory_order_relaxed);
      } else {
        state.active[v] = 1;
      }
    }
    out.row_ptr[v + 1] = entries;
  }
}

void fill_window_rows(const MultiWindowGraph& part, Timestamp ts, Timestamp te,
                      CompiledWindowCsr& out, std::size_t lo, std::size_t hi) {
  for (std::size_t v = lo; v < hi; ++v) {
    std::size_t at = out.row_ptr[v];
    part.in.for_each_active_neighbor(static_cast<VertexId>(v), ts, te,
                                     [&](VertexId u) { out.nbr[at++] = u; });
    assert(at == out.row_ptr[v + 1]);
  }
}

}  // namespace

void compile_window(const MultiWindowGraph& part, Timestamp ts, Timestamp te,
                    WindowState& state, CompiledWindowCsr& out,
                    const par::ForOptions* parallel) {
  const std::size_t n = part.num_local();
  state.resize(n);
  out.row_ptr.assign(n + 1, 0);
  out.active_rows.clear();
  out.dangling_rows.clear();

  if (parallel != nullptr) {
    par::parallel_for_range(
        0, n, *parallel, [&](std::size_t lo, std::size_t hi) {
          count_and_scatter_window_rows<true>(part, ts, te, state, out, lo,
                                              hi);
        });
  } else {
    count_and_scatter_window_rows<false>(part, ts, te, state, out, 0, n);
  }

  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t cnt = out.row_ptr[v + 1];
    out.row_ptr[v + 1] = total += cnt;
  }
  out.nbr.resize(total);

  if (parallel != nullptr) {
    par::parallel_for_range(0, n, *parallel,
                            [&](std::size_t lo, std::size_t hi) {
                              fill_window_rows(part, ts, te, out, lo, hi);
                            });
  } else {
    fill_window_rows(part, ts, te, out, 0, n);
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (state.active[v] == 0) continue;
    ++state.num_active;
    out.active_rows.push_back(static_cast<VertexId>(v));
    if (state.out_degree[v] == 0) {
      out.dangling_rows.push_back(static_cast<VertexId>(v));
    }
  }
}

}  // namespace pmpr
