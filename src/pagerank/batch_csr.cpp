#include "pagerank/batch_csr.hpp"

#include <atomic>
#include <cassert>

namespace pmpr {

namespace {

/// Pass A of the SpMM compile: per-row run compression that counts the
/// surviving (mask != 0) runs into row_ptr[v + 1] and scatters degrees and
/// activity exactly like compute_spmm_state. `Atomic` selects
/// std::atomic_ref for the cross-row scatter targets; row_ptr[v + 1] is
/// owned by the row and needs none.
template <bool Atomic>
void count_and_scatter_rows(const MultiWindowGraph& part,
                            const WindowSpec& spec, const SpmmBatch& batch,
                            SpmmWindowState& state, CompiledBatchCsr& out,
                            std::size_t lo, std::size_t hi) {
  const std::size_t lanes = batch.lanes;
  for (std::size_t v = lo; v < hi; ++v) {
    const auto cols = part.in.row_cols(static_cast<VertexId>(v));
    const auto times = part.in.row_times(static_cast<VertexId>(v));
    std::uint64_t v_mask = 0;
    std::size_t entries = 0;
    std::size_t i = 0;
    while (i < cols.size()) {
      const VertexId u = cols[i];
      std::uint64_t run_mask = 0;
      while (i < cols.size() && cols[i] == u) {
        run_mask |= lanes_containing(spec, batch, times[i]);
        ++i;
      }
      if (run_mask == 0) continue;
      ++entries;
      v_mask |= run_mask;
      std::uint64_t m = run_mask;
      while (m != 0) {
        const auto k = static_cast<unsigned>(__builtin_ctzll(m));
        m &= m - 1;
        if constexpr (Atomic) {
          std::atomic_ref<std::uint32_t> deg(state.out_degree[u * lanes + k]);
          // relaxed: pure commutative count; published by the join.
          deg.fetch_add(1, std::memory_order_relaxed);
        } else {
          ++state.out_degree[u * lanes + k];
        }
      }
      if constexpr (Atomic) {
        std::atomic_ref<std::uint64_t> am(state.active_mask[u]);
        // relaxed: commutative bit-set; published by the join.
        am.fetch_or(run_mask, std::memory_order_relaxed);
      } else {
        state.active_mask[u] |= run_mask;
      }
    }
    if (v_mask != 0) {
      if constexpr (Atomic) {
        std::atomic_ref<std::uint64_t> am(state.active_mask[v]);
        // relaxed: commutative bit-set; published by the join.
        am.fetch_or(v_mask, std::memory_order_relaxed);
      } else {
        state.active_mask[v] |= v_mask;
      }
    }
    out.row_ptr[v + 1] = entries;
  }
}

/// Pass B: re-runs the (row-local) run scan and fills nbr/mask at the
/// prefix-summed offsets. No cross-row writes, so no atomics.
void fill_rows(const MultiWindowGraph& part, const WindowSpec& spec,
               const SpmmBatch& batch, CompiledBatchCsr& out, std::size_t lo,
               std::size_t hi) {
  for (std::size_t v = lo; v < hi; ++v) {
    const auto cols = part.in.row_cols(static_cast<VertexId>(v));
    const auto times = part.in.row_times(static_cast<VertexId>(v));
    std::size_t at = out.row_ptr[v];
    std::size_t i = 0;
    while (i < cols.size()) {
      const VertexId u = cols[i];
      std::uint64_t run_mask = 0;
      while (i < cols.size() && cols[i] == u) {
        run_mask |= lanes_containing(spec, batch, times[i]);
        ++i;
      }
      if (run_mask == 0) continue;
      out.nbr[at] = u;
      out.mask[at] = run_mask;
      ++at;
    }
    assert(at == out.row_ptr[v + 1]);
  }
}

}  // namespace

void compile_spmm_batch(const MultiWindowGraph& part, const WindowSpec& spec,
                        const SpmmBatch& batch, SpmmWindowState& state,
                        CompiledBatchCsr& out,
                        const par::ForOptions* parallel) {
  assert(batch.lanes >= 1 && batch.lanes <= 64);
  const std::size_t n = part.num_local();
  state.resize(n, batch.lanes);
  out.lanes = batch.lanes;
  out.row_ptr.assign(n + 1, 0);
  out.active_rows.clear();
  out.dangling_rows.clear();
  out.dangling_mask.clear();

  if (parallel != nullptr) {
    par::parallel_for_range(
        0, n, *parallel, [&](std::size_t lo, std::size_t hi) {
          count_and_scatter_rows<true>(part, spec, batch, state, out, lo, hi);
        });
  } else {
    count_and_scatter_rows<false>(part, spec, batch, state, out, 0, n);
  }

  // Exclusive prefix sum turns per-row counts into offsets.
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t cnt = out.row_ptr[v + 1];
    out.row_ptr[v + 1] = total += cnt;
  }
  out.nbr.resize(total);
  out.mask.resize(total);

  if (parallel != nullptr) {
    par::parallel_for_range(0, n, *parallel,
                            [&](std::size_t lo, std::size_t hi) {
                              fill_rows(part, spec, batch, out, lo, hi);
                            });
  } else {
    fill_rows(part, spec, batch, out, 0, n);
  }

  // Compaction lists + per-lane population (needs the complete degrees).
  const std::size_t lanes = batch.lanes;
  for (std::size_t v = 0; v < n; ++v) {
    std::uint64_t m = state.active_mask[v];
    if (m == 0) continue;
    out.active_rows.push_back(static_cast<VertexId>(v));
    std::uint64_t dangling = 0;
    while (m != 0) {
      const auto k = static_cast<unsigned>(__builtin_ctzll(m));
      m &= m - 1;
      ++state.num_active[k];
      if (state.out_degree[v * lanes + k] == 0) dangling |= 1ULL << k;
    }
    if (dangling != 0) {
      out.dangling_rows.push_back(static_cast<VertexId>(v));
      out.dangling_mask.push_back(dangling);
    }
  }
}

namespace {

template <bool Atomic>
void count_and_scatter_window_rows(const MultiWindowGraph& part, Timestamp ts,
                                   Timestamp te, WindowState& state,
                                   CompiledWindowCsr& out, std::size_t lo,
                                   std::size_t hi) {
  for (std::size_t v = lo; v < hi; ++v) {
    std::size_t entries = 0;
    part.in.for_each_active_neighbor(
        static_cast<VertexId>(v), ts, te, [&](VertexId u) {
          ++entries;
          if constexpr (Atomic) {
            std::atomic_ref<std::uint32_t> deg(state.out_degree[u]);
            // relaxed: pure commutative count; published by the join.
            deg.fetch_add(1, std::memory_order_relaxed);
            std::atomic_ref<std::uint8_t> act(state.active[u]);
            // relaxed: idempotent flag; published by the join.
            act.store(1, std::memory_order_relaxed);
          } else {
            ++state.out_degree[u];
            state.active[u] = 1;
          }
        });
    if (entries > 0) {
      if constexpr (Atomic) {
        std::atomic_ref<std::uint8_t> act(state.active[v]);
        // relaxed: idempotent flag; published by the join.
        act.store(1, std::memory_order_relaxed);
      } else {
        state.active[v] = 1;
      }
    }
    out.row_ptr[v + 1] = entries;
  }
}

void fill_window_rows(const MultiWindowGraph& part, Timestamp ts, Timestamp te,
                      CompiledWindowCsr& out, std::size_t lo, std::size_t hi) {
  for (std::size_t v = lo; v < hi; ++v) {
    std::size_t at = out.row_ptr[v];
    part.in.for_each_active_neighbor(static_cast<VertexId>(v), ts, te,
                                     [&](VertexId u) { out.nbr[at++] = u; });
    assert(at == out.row_ptr[v + 1]);
  }
}

}  // namespace

void compile_window(const MultiWindowGraph& part, Timestamp ts, Timestamp te,
                    WindowState& state, CompiledWindowCsr& out,
                    const par::ForOptions* parallel) {
  const std::size_t n = part.num_local();
  state.resize(n);
  out.row_ptr.assign(n + 1, 0);
  out.active_rows.clear();
  out.dangling_rows.clear();

  if (parallel != nullptr) {
    par::parallel_for_range(
        0, n, *parallel, [&](std::size_t lo, std::size_t hi) {
          count_and_scatter_window_rows<true>(part, ts, te, state, out, lo,
                                              hi);
        });
  } else {
    count_and_scatter_window_rows<false>(part, ts, te, state, out, 0, n);
  }

  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t cnt = out.row_ptr[v + 1];
    out.row_ptr[v + 1] = total += cnt;
  }
  out.nbr.resize(total);

  if (parallel != nullptr) {
    par::parallel_for_range(0, n, *parallel,
                            [&](std::size_t lo, std::size_t hi) {
                              fill_window_rows(part, ts, te, out, lo, hi);
                            });
  } else {
    fill_window_rows(part, ts, te, out, 0, n);
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (state.active[v] == 0) continue;
    ++state.num_active;
    out.active_rows.push_back(static_cast<VertexId>(v));
    if (state.out_degree[v] == 0) {
      out.dangling_rows.push_back(static_cast<VertexId>(v));
    }
  }
}

}  // namespace pmpr
