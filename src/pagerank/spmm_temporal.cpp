#include "pagerank/spmm_temporal.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

#include "obs/counters.hpp"

namespace pmpr {

namespace {

constexpr std::size_t kMaxLanes = 64;
using LaneDoubles = std::array<double, kMaxLanes>;

LaneDoubles add_lanes(LaneDoubles a, const LaneDoubles& b,
                      std::size_t lanes) {
  for (std::size_t k = 0; k < lanes; ++k) a[k] += b[k];
  return a;
}

/// One shared sweep over rows [lo, hi) advancing all lanes in `live_mask`.
/// Accumulates the per-lane L1 change into `diff`.
void sweep_rows(const MultiWindowGraph& part, const WindowSpec& spec,
                const SpmmBatch& batch, const SpmmWindowState& state,
                std::span<const double> x, std::span<double> x_next,
                const LaneDoubles& base, double one_minus_alpha,
                std::uint64_t live_mask, LaneDoubles& diff, std::size_t lo,
                std::size_t hi) {
  const std::size_t lanes = batch.lanes;
  LaneDoubles acc;
  std::uint64_t edges = 0;  // flushed once per chunk, not per edge
  for (std::size_t v = lo; v < hi; ++v) {
    const std::uint64_t v_active = state.active_mask[v];
    const std::uint64_t v_update = v_active & live_mask;
    // Frozen (converged) and inactive lanes keep their current value so the
    // buffers can be swapped; accumulate only for live active lanes.
    for (std::size_t k = 0; k < lanes; ++k) {
      acc[k] = base[k];
    }

    if (v_update != 0) {
      const auto cols = part.in.row_cols(static_cast<VertexId>(v));
      const auto times = part.in.row_times(static_cast<VertexId>(v));
      edges += cols.size();
      std::size_t i = 0;
      while (i < cols.size()) {
        const VertexId u = cols[i];
        std::uint64_t run_mask = 0;
        while (i < cols.size() && cols[i] == u) {
          run_mask |= lanes_containing(spec, batch, times[i]);
          ++i;
        }
        std::uint64_t m = run_mask & v_update;
        while (m != 0) {
          const auto k = static_cast<std::size_t>(__builtin_ctzll(m));
          m &= m - 1;
          acc[k] += one_minus_alpha *
                    (x[u * lanes + k] /
                     static_cast<double>(state.out_degree[u * lanes + k]));
        }
      }
    }

    for (std::size_t k = 0; k < lanes; ++k) {
      const std::uint64_t bit = 1ULL << k;
      const double cur = x[v * lanes + k];
      if ((v_active & bit) == 0) {
        x_next[v * lanes + k] = 0.0;
      } else if ((live_mask & bit) == 0) {
        x_next[v * lanes + k] = cur;  // frozen lane
      } else {
        const double next = acc[k];
        diff[k] += std::abs(next - cur);
        x_next[v * lanes + k] = next;
      }
    }
  }
  obs::count(obs::Counter::kEdgesTraversed, edges);
}

/// Compiled-layout sweep over active_rows[lo, hi): the inner loop is
/// load-neighbor, load-mask, AND live_mask, fused multiply-add per set bit —
/// no timestamp arithmetic, no duplicate-run re-scans, no untouched rows.
/// Performs the exact floating-point operations of sweep_rows in the same
/// order.
void sweep_compiled_rows(const CompiledBatchCsr& compiled,
                         const SpmmWindowState& state,
                         std::span<const double> x, std::span<double> x_next,
                         const LaneDoubles& base, double one_minus_alpha,
                         std::uint64_t live_mask, LaneDoubles& diff,
                         std::size_t lo, std::size_t hi) {
  const std::size_t lanes = compiled.lanes;
  LaneDoubles acc;
  std::uint64_t edges = 0;  // flushed once per chunk, not per edge
  for (std::size_t r = lo; r < hi; ++r) {
    const VertexId v = compiled.active_rows[r];
    const std::uint64_t v_active = state.active_mask[v];
    const std::uint64_t v_update = v_active & live_mask;
    for (std::size_t k = 0; k < lanes; ++k) {
      acc[k] = base[k];
    }

    if (v_update != 0) {
      const auto nbr = compiled.row_nbr(v);
      const auto mask = compiled.row_mask(v);
      edges += nbr.size();
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        const VertexId u = nbr[i];
        std::uint64_t m = mask[i] & v_update;
        while (m != 0) {
          const auto k = static_cast<std::size_t>(__builtin_ctzll(m));
          m &= m - 1;
          acc[k] += one_minus_alpha *
                    (x[u * lanes + k] /
                     static_cast<double>(state.out_degree[u * lanes + k]));
        }
      }
    }

    for (std::size_t k = 0; k < lanes; ++k) {
      const std::uint64_t bit = 1ULL << k;
      const double cur = x[v * lanes + k];
      if ((v_active & bit) == 0) {
        x_next[v * lanes + k] = 0.0;
      } else if ((live_mask & bit) == 0) {
        x_next[v * lanes + k] = cur;  // frozen lane
      } else {
        const double next = acc[k];
        diff[k] += std::abs(next - cur);
        x_next[v * lanes + k] = next;
      }
    }
  }
  obs::count(obs::Counter::kEdgesTraversed, edges);
}

/// Per-lane dangling mass of live lanes from the current vectors, scanning
/// rows [lo, hi) of the full vertex space (reference path).
LaneDoubles dangling_scan(const SpmmWindowState& state, const double* cur,
                          std::size_t lanes, std::uint64_t live_mask,
                          std::size_t lo, std::size_t hi) {
  LaneDoubles dangling{};
  for (std::size_t v = lo; v < hi; ++v) {
    std::uint64_t m = state.active_mask[v] & live_mask;
    while (m != 0) {
      const auto k = static_cast<std::size_t>(__builtin_ctzll(m));
      m &= m - 1;
      if (state.out_degree[v * lanes + k] == 0) {
        dangling[k] += cur[v * lanes + k];
      }
    }
  }
  obs::count(obs::Counter::kDanglingScanned, hi - lo);
  return dangling;
}

/// Compiled dangling scan: only the precompiled dangling vertices are
/// visited, masked down to the still-live lanes (converged lanes cost
/// nothing). Reads dangling-list indices [lo, hi).
LaneDoubles dangling_scan_compiled(const CompiledBatchCsr& compiled,
                                   const double* cur, std::size_t lanes,
                                   std::uint64_t live_mask, std::size_t lo,
                                   std::size_t hi) {
  LaneDoubles dangling{};
  for (std::size_t i = lo; i < hi; ++i) {
    const VertexId v = compiled.dangling_rows[i];
    std::uint64_t m = compiled.dangling_mask[i] & live_mask;
    while (m != 0) {
      const auto k = static_cast<std::size_t>(__builtin_ctzll(m));
      m &= m - 1;
      dangling[k] += cur[v * lanes + k];
    }
  }
  obs::count(obs::Counter::kDanglingScanned, hi - lo);
  return dangling;
}

/// Shared power-iteration driver: `DanglingFn(cur, live_mask)` returns the
/// per-lane dangling mass, `SweepFn(cur, next, base, live_mask, diff)` runs
/// one full sweep (serial or parallel).
template <typename DanglingFn, typename SweepFn>
SpmmStats power_iterate(std::size_t n, std::size_t lanes,
                        std::span<const std::size_t> num_active,
                        std::span<double> x, std::span<double> scratch,
                        const PagerankParams& params, DanglingFn&& dangling_of,
                        SweepFn&& sweep) {
  SpmmStats stats;
  stats.lane_stats.assign(lanes, PagerankStats{});

  std::uint64_t live_mask = 0;
  for (std::size_t k = 0; k < lanes; ++k) {
    if (num_active[k] > 0) {
      live_mask |= 1ULL << k;
    } else {
      // Empty window: zero the lane and mark it converged immediately.
      for (std::size_t v = 0; v < n; ++v) x[v * lanes + k] = 0.0;
    }
  }

  const double one_minus_alpha = 1.0 - params.alpha;
  double* cur = x.data();
  double* next = scratch.data();

  for (int iter = 0; iter < params.max_iters && live_mask != 0; ++iter) {
    LaneDoubles base{};
    const LaneDoubles dangling =
        params.redistribute_dangling ? dangling_of(cur, live_mask)
                                     : LaneDoubles{};
    for (std::size_t k = 0; k < lanes; ++k) {
      base[k] = num_active[k] > 0
                    ? (params.alpha + one_minus_alpha * dangling[k]) /
                          static_cast<double>(num_active[k])
                    : 0.0;
    }

    LaneDoubles diff{};
    sweep(std::span<const double>(cur, n * lanes),
          std::span<double>(next, n * lanes), base, live_mask, diff);

    std::swap(cur, next);
    stats.iterations = iter + 1;
    const bool record_residuals = obs::metrics_enabled();
    std::uint64_t converged_this_iter = 0;
    for (std::size_t k = 0; k < lanes; ++k) {
      const std::uint64_t bit = 1ULL << k;
      if ((live_mask & bit) == 0) continue;
      stats.lane_stats[k].iterations = iter + 1;
      stats.lane_stats[k].final_residual = diff[k];
      if (record_residuals) stats.lane_stats[k].residuals.push_back(diff[k]);
      if (diff[k] < params.tol) {
        live_mask &= ~bit;
        ++converged_this_iter;
      }
    }
    if (converged_this_iter != 0) {
      obs::count(obs::Counter::kLanesConverged, converged_this_iter);
    }
  }
  obs::count(obs::Counter::kIterations,
             static_cast<std::uint64_t>(stats.iterations));

  if (cur != x.data()) {
    std::memcpy(x.data(), cur, n * lanes * sizeof(double));
  }
  return stats;
}

}  // namespace

SpmmStats pagerank_spmm(const MultiWindowGraph& part, const WindowSpec& spec,
                        const SpmmBatch& batch, const SpmmWindowState& state,
                        std::span<double> x, std::span<double> scratch,
                        const PagerankParams& params,
                        const par::ForOptions* parallel) {
  const std::size_t n = part.num_local();
  const std::size_t lanes = batch.lanes;
  assert(lanes >= 1 && lanes <= kMaxLanes);
  assert(x.size() == n * lanes && scratch.size() == n * lanes);
  assert(state.lanes == lanes);

  const double one_minus_alpha = 1.0 - params.alpha;
  auto dangling_of = [&](const double* cur, std::uint64_t live_mask) {
    if (parallel != nullptr) {
      return par::parallel_reduce_slots(
          0, n, LaneDoubles{}, *parallel,
          [&](std::size_t lo, std::size_t hi) {
            return dangling_scan(state, cur, lanes, live_mask, lo, hi);
          },
          [&](LaneDoubles a, const LaneDoubles& b) {
            return add_lanes(a, b, lanes);
          });
    }
    return dangling_scan(state, cur, lanes, live_mask, 0, n);
  };
  auto sweep = [&](std::span<const double> cur, std::span<double> next,
                   const LaneDoubles& base, std::uint64_t live_mask,
                   LaneDoubles& diff) {
    if (parallel != nullptr) {
      diff = par::parallel_reduce_slots(
          0, n, LaneDoubles{}, *parallel,
          [&](std::size_t lo, std::size_t hi) {
            LaneDoubles local{};
            sweep_rows(part, spec, batch, state, cur, next, base,
                       one_minus_alpha, live_mask, local, lo, hi);
            return local;
          },
          [&](LaneDoubles a, const LaneDoubles& b) {
            return add_lanes(a, b, lanes);
          });
    } else {
      sweep_rows(part, spec, batch, state, cur, next, base, one_minus_alpha,
                 live_mask, diff, 0, n);
    }
  };
  return power_iterate(n, lanes, state.num_active, x, scratch, params,
                       dangling_of, sweep);
}

SpmmStats pagerank_spmm(const SpmmWindowState& state,
                        const CompiledBatchCsr& compiled, std::span<double> x,
                        std::span<double> scratch,
                        const PagerankParams& params,
                        const par::ForOptions* parallel) {
  const std::size_t n = compiled.num_rows();
  const std::size_t lanes = compiled.lanes;
  assert(lanes >= 1 && lanes <= kMaxLanes);
  assert(x.size() == n * lanes && scratch.size() == n * lanes);
  assert(state.lanes == lanes);

  // Sweeps visit only active rows, so entries of rows inactive in every
  // lane are forced to the reference kernel's 0.0 once, in both buffers
  // (the reference rewrites them every iteration).
  std::size_t next_active = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (next_active < compiled.active_rows.size() &&
        compiled.active_rows[next_active] == v) {
      ++next_active;
      continue;
    }
    for (std::size_t k = 0; k < lanes; ++k) {
      x[v * lanes + k] = 0.0;
      scratch[v * lanes + k] = 0.0;
    }
  }

  const double one_minus_alpha = 1.0 - params.alpha;
  const std::size_t rows = compiled.active_rows.size();
  const std::size_t dangling_rows = compiled.dangling_rows.size();
  auto dangling_of = [&](const double* cur, std::uint64_t live_mask) {
    if (parallel != nullptr) {
      return par::parallel_reduce_slots(
          0, dangling_rows, LaneDoubles{}, *parallel,
          [&](std::size_t lo, std::size_t hi) {
            return dangling_scan_compiled(compiled, cur, lanes, live_mask, lo,
                                          hi);
          },
          [&](LaneDoubles a, const LaneDoubles& b) {
            return add_lanes(a, b, lanes);
          });
    }
    return dangling_scan_compiled(compiled, cur, lanes, live_mask, 0,
                                  dangling_rows);
  };
  auto sweep = [&](std::span<const double> cur, std::span<double> next,
                   const LaneDoubles& base, std::uint64_t live_mask,
                   LaneDoubles& diff) {
    if (parallel != nullptr) {
      diff = par::parallel_reduce_slots(
          0, rows, LaneDoubles{}, *parallel,
          [&](std::size_t lo, std::size_t hi) {
            LaneDoubles local{};
            sweep_compiled_rows(compiled, state, cur, next, base,
                                one_minus_alpha, live_mask, local, lo, hi);
            return local;
          },
          [&](LaneDoubles a, const LaneDoubles& b) {
            return add_lanes(a, b, lanes);
          });
    } else {
      sweep_compiled_rows(compiled, state, cur, next, base, one_minus_alpha,
                          live_mask, diff, 0, rows);
    }
  };
  return power_iterate(n, lanes, state.num_active, x, scratch, params,
                       dangling_of, sweep);
}

}  // namespace pmpr
