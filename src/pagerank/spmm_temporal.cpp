#include "pagerank/spmm_temporal.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

#include "obs/counters.hpp"
#include "pagerank/simd_sweep.hpp"
#include "util/check.hpp"

namespace pmpr {

namespace {

constexpr std::size_t kMaxMaskWords = mask_words_for(kMaxSpmmLanes);

/// Stack-sized multi-word mask; only the first mask_words are used.
using LiveMask = std::array<std::uint64_t, kMaxMaskWords>;

/// Per-lane double accumulators, sized `lanes` at runtime (lane counts up
/// to kMaxSpmmLanes made the old fixed std::array<double, 64> untenable).
using LaneVec = std::vector<double>;

LaneVec add_lanes(LaneVec a, const LaneVec& b) {
  for (std::size_t k = 0; k < a.size(); ++k) a[k] += b[k];
  return a;
}

/// One shared sweep over rows [lo, hi) advancing all lanes live in
/// `live_mask` (mask_words words). Accumulates the per-lane L1 change into
/// `diff`. This is the reference kernel the compiled sweeps must match
/// bit-for-bit when run serially; like them it uses an explicit fused
/// multiply-add per contribution.
void sweep_rows(const MultiWindowGraph& part, const WindowSpec& spec,
                const SpmmBatch& batch, const SpmmWindowState& state,
                std::span<const double> x, std::span<double> x_next,
                const LaneVec& base, double one_minus_alpha,
                const std::uint64_t* live_mask, LaneVec& diff, std::size_t lo,
                std::size_t hi) {
  const std::size_t lanes = batch.lanes;
  const std::size_t words = state.mask_words;
  LiveMask acc_scratch{};  // per-run lane mask, reused across runs
  std::vector<double> acc(lanes);
  std::uint64_t edges = 0;  // flushed once per chunk, not per edge
  for (std::size_t v = lo; v < hi; ++v) {
    const std::uint64_t* v_active = state.mask_of(v);
    std::uint64_t any_update = 0;
    for (std::size_t w = 0; w < words; ++w) {
      any_update |= v_active[w] & live_mask[w];
    }
    // Frozen (converged) and inactive lanes keep their current value so the
    // buffers can be swapped; accumulate only for live active lanes.
    for (std::size_t k = 0; k < lanes; ++k) {
      acc[k] = base[k];
    }

    if (any_update != 0) {
      const auto cols = part.in.row_cols(static_cast<VertexId>(v));
      const auto times = part.in.row_times(static_cast<VertexId>(v));
      edges += cols.size();
      std::size_t i = 0;
      while (i < cols.size()) {
        const VertexId u = cols[i];
        LiveMask& run_mask = acc_scratch;
        run_mask.fill(0);
        while (i < cols.size() && cols[i] == u) {
          lanes_containing_into(spec, batch, times[i], run_mask.data());
          ++i;
        }
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t m = run_mask[w] & v_active[w] & live_mask[w];
          while (m != 0) {
            const std::size_t k = w * kLanesPerMaskWord + ctz64(m);
            m &= m - 1;
            acc[k] = std::fma(
                one_minus_alpha,
                x[u * lanes + k] /
                    static_cast<double>(state.out_degree[u * lanes + k]),
                acc[k]);
          }
        }
      }
    }

    for (std::size_t k = 0; k < lanes; ++k) {
      const double cur = x[v * lanes + k];
      if (!mask_test(v_active, k)) {
        x_next[v * lanes + k] = 0.0;
      } else if (!mask_test(live_mask, k)) {
        x_next[v * lanes + k] = cur;  // frozen lane
      } else {
        const double next = acc[k];
        diff[k] += std::abs(next - cur);
        x_next[v * lanes + k] = next;
      }
    }
  }
  obs::count(obs::Counter::kEdgesTraversed, edges);
}

/// Per-lane dangling mass of live lanes from the current vectors, scanning
/// rows [lo, hi) of the full vertex space (reference path).
LaneVec dangling_scan(const SpmmWindowState& state, const double* cur,
                      std::size_t lanes, const std::uint64_t* live_mask,
                      std::size_t lo, std::size_t hi) {
  LaneVec dangling(lanes, 0.0);
  const std::size_t words = state.mask_words;
  for (std::size_t v = lo; v < hi; ++v) {
    const std::uint64_t* v_active = state.mask_of(v);
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t m = v_active[w] & live_mask[w];
      while (m != 0) {
        const std::size_t k = w * kLanesPerMaskWord + ctz64(m);
        m &= m - 1;
        if (state.out_degree[v * lanes + k] == 0) {
          dangling[k] += cur[v * lanes + k];
        }
      }
    }
  }
  obs::count(obs::Counter::kDanglingScanned, hi - lo);
  return dangling;
}

/// Compiled dangling scan: only the precompiled dangling vertices are
/// visited, masked down to the still-live lanes (converged lanes cost
/// nothing). Reads dangling-list indices [lo, hi).
LaneVec dangling_scan_compiled(const CompiledBatchCsr& compiled,
                               const double* cur, std::size_t lanes,
                               const std::uint64_t* live_mask, std::size_t lo,
                               std::size_t hi) {
  LaneVec dangling(lanes, 0.0);
  const std::size_t words = compiled.mask_words;
  for (std::size_t i = lo; i < hi; ++i) {
    const VertexId v = compiled.dangling_rows[i];
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t m = compiled.dangling_mask[i * words + w] & live_mask[w];
      while (m != 0) {
        const std::size_t k = w * kLanesPerMaskWord + ctz64(m);
        m &= m - 1;
        dangling[k] += cur[v * lanes + k];
      }
    }
  }
  obs::count(obs::Counter::kDanglingScanned, hi - lo);
  return dangling;
}

/// Shared power-iteration driver: `DanglingFn(cur, live_mask)` returns the
/// per-lane dangling mass, `SweepFn(cur, next, base, live_mask, diff)` runs
/// one full sweep (serial or parallel).
template <typename DanglingFn, typename SweepFn>
SpmmStats power_iterate(std::size_t n, std::size_t lanes, std::size_t words,
                        std::span<const std::size_t> num_active,
                        std::span<double> x, std::span<double> scratch,
                        const PagerankParams& params, DanglingFn&& dangling_of,
                        SweepFn&& sweep) {
  SpmmStats stats;
  stats.lane_stats.assign(lanes, PagerankStats{});

  LiveMask live{};
  for (std::size_t k = 0; k < lanes; ++k) {
    if (num_active[k] > 0) {
      mask_set(live.data(), k);
    } else {
      // Empty window: zero the lane and mark it converged immediately.
      for (std::size_t v = 0; v < n; ++v) x[v * lanes + k] = 0.0;
    }
  }

  const double one_minus_alpha = 1.0 - params.alpha;
  double* cur = x.data();
  double* next = scratch.data();

  for (int iter = 0;
       iter < params.max_iters && mask_any(live.data(), words); ++iter) {
    LaneVec base(lanes, 0.0);
    const LaneVec dangling = params.redistribute_dangling
                                 ? dangling_of(cur, live.data())
                                 : LaneVec(lanes, 0.0);
    for (std::size_t k = 0; k < lanes; ++k) {
      base[k] = num_active[k] > 0
                    ? (params.alpha + one_minus_alpha * dangling[k]) /
                          static_cast<double>(num_active[k])
                    : 0.0;
    }

    LaneVec diff(lanes, 0.0);
    sweep(std::span<const double>(cur, n * lanes),
          std::span<double>(next, n * lanes), base, live.data(), diff);

    std::swap(cur, next);
    stats.iterations = iter + 1;
    const bool record_residuals = obs::metrics_enabled();
    std::uint64_t converged_this_iter = 0;
    for (std::size_t k = 0; k < lanes; ++k) {
      if (!mask_test(live.data(), k)) continue;
      stats.lane_stats[k].iterations = iter + 1;
      stats.lane_stats[k].final_residual = diff[k];
      if (record_residuals) stats.lane_stats[k].residuals.push_back(diff[k]);
      if (diff[k] < params.tol) {
        mask_clear(live.data(), k);
        ++converged_this_iter;
      }
    }
    if (converged_this_iter != 0) {
      obs::count(obs::Counter::kLanesConverged, converged_this_iter);
    }
  }
  obs::count(obs::Counter::kIterations,
             static_cast<std::uint64_t>(stats.iterations));

  if (cur != x.data()) {
    std::memcpy(x.data(), cur, n * lanes * sizeof(double));
  }
  return stats;
}

}  // namespace

SpmmStats pagerank_spmm(const MultiWindowGraph& part, const WindowSpec& spec,
                        const SpmmBatch& batch, const SpmmWindowState& state,
                        std::span<double> x, std::span<double> scratch,
                        const PagerankParams& params,
                        const par::ForOptions* parallel) {
  const std::size_t n = part.num_local();
  const std::size_t lanes = batch.lanes;
  PMPR_CHECK_MSG(lanes >= 1 && lanes <= kMaxSpmmLanes,
                 "SpMM batch lanes " << lanes << " outside [1, "
                                     << kMaxSpmmLanes << "]");
  assert(x.size() == n * lanes && scratch.size() == n * lanes);
  assert(state.lanes == lanes);
  const std::size_t words = state.mask_words;

  const double one_minus_alpha = 1.0 - params.alpha;
  auto dangling_of = [&](const double* cur, const std::uint64_t* live_mask) {
    if (parallel != nullptr) {
      return par::parallel_reduce_slots(
          0, n, LaneVec(lanes, 0.0), *parallel,
          [&](std::size_t lo, std::size_t hi) {
            return dangling_scan(state, cur, lanes, live_mask, lo, hi);
          },
          add_lanes);
    }
    return dangling_scan(state, cur, lanes, live_mask, 0, n);
  };
  auto sweep = [&](std::span<const double> cur, std::span<double> next,
                   const LaneVec& base, const std::uint64_t* live_mask,
                   LaneVec& diff) {
    if (parallel != nullptr) {
      diff = par::parallel_reduce_slots(
          0, n, LaneVec(lanes, 0.0), *parallel,
          [&](std::size_t lo, std::size_t hi) {
            LaneVec local(lanes, 0.0);
            sweep_rows(part, spec, batch, state, cur, next, base,
                       one_minus_alpha, live_mask, local, lo, hi);
            return local;
          },
          add_lanes);
    } else {
      sweep_rows(part, spec, batch, state, cur, next, base, one_minus_alpha,
                 live_mask, diff, 0, n);
    }
  };
  return power_iterate(n, lanes, words, state.num_active, x, scratch, params,
                       dangling_of, sweep);
}

SpmmStats pagerank_spmm(const SpmmWindowState& state,
                        const CompiledBatchCsr& compiled, std::span<double> x,
                        std::span<double> scratch,
                        const PagerankParams& params,
                        const par::ForOptions* parallel, SimdMode simd) {
  const std::size_t n = compiled.num_rows();
  const std::size_t lanes = compiled.lanes;
  PMPR_CHECK_MSG(lanes >= 1 && lanes <= kMaxSpmmLanes,
                 "SpMM batch lanes " << lanes << " outside [1, "
                                     << kMaxSpmmLanes << "]");
  assert(x.size() == n * lanes && scratch.size() == n * lanes);
  assert(state.lanes == lanes);
  assert(state.mask_words == compiled.mask_words);
  const std::size_t words = compiled.mask_words;

  const SimdIsa isa = resolve_simd(simd);
  const SpmmSweepFn sweep_fn = select_spmm_sweep(words, isa);
  const obs::Counter isa_counter =
      isa == SimdIsa::kAvx512  ? obs::Counter::kSimdSweepAvx512
      : isa == SimdIsa::kAvx2 ? obs::Counter::kSimdSweepAvx2
                               : obs::Counter::kSimdSweepScalar;

  // Sweeps visit only active rows, so entries of rows inactive in every
  // lane are forced to the reference kernel's 0.0 once, in both buffers
  // (the reference rewrites them every iteration).
  std::size_t next_active = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (next_active < compiled.active_rows.size() &&
        compiled.active_rows[next_active] == v) {
      ++next_active;
      continue;
    }
    for (std::size_t k = 0; k < lanes; ++k) {
      x[v * lanes + k] = 0.0;
      scratch[v * lanes + k] = 0.0;
    }
  }

  const double one_minus_alpha = 1.0 - params.alpha;
  const std::size_t rows = compiled.active_rows.size();
  const std::size_t dangling_rows = compiled.dangling_rows.size();
  auto dangling_of = [&](const double* cur, const std::uint64_t* live_mask) {
    if (parallel != nullptr) {
      return par::parallel_reduce_slots(
          0, dangling_rows, LaneVec(lanes, 0.0), *parallel,
          [&](std::size_t lo, std::size_t hi) {
            return dangling_scan_compiled(compiled, cur, lanes, live_mask, lo,
                                          hi);
          },
          add_lanes);
    }
    return dangling_scan_compiled(compiled, cur, lanes, live_mask, 0,
                                  dangling_rows);
  };
  auto sweep = [&](std::span<const double> cur, std::span<double> next,
                   const LaneVec& base, const std::uint64_t* live_mask,
                   LaneVec& diff) {
    obs::count(isa_counter);
    if (parallel != nullptr) {
      diff = par::parallel_reduce_slots(
          0, rows, LaneVec(lanes, 0.0), *parallel,
          [&](std::size_t lo, std::size_t hi) {
            LaneVec local(lanes, 0.0);
            const std::uint64_t edges =
                sweep_fn(compiled, state, cur.data(), next.data(),
                         base.data(), one_minus_alpha, live_mask,
                         local.data(), lo, hi);
            obs::count(obs::Counter::kEdgesTraversed, edges);
            return local;
          },
          add_lanes);
    } else {
      const std::uint64_t edges =
          sweep_fn(compiled, state, cur.data(), next.data(), base.data(),
                   one_minus_alpha, live_mask, diff.data(), 0, rows);
      obs::count(obs::Counter::kEdgesTraversed, edges);
    }
  };
  return power_iterate(n, lanes, words, state.num_active, x, scratch, params,
                       dangling_of, sweep);
}

}  // namespace pmpr
