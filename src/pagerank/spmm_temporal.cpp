#include "pagerank/spmm_temporal.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/thread_annotations.hpp"

namespace pmpr {

namespace {

constexpr std::size_t kMaxLanes = 64;
using LaneDoubles = std::array<double, kMaxLanes>;

/// One shared sweep over rows [lo, hi) advancing all lanes in `live_mask`.
/// Accumulates the per-lane L1 change into `diff`.
void sweep_rows(const MultiWindowGraph& part, const WindowSpec& spec,
                const SpmmBatch& batch, const SpmmWindowState& state,
                std::span<const double> x, std::span<double> x_next,
                const LaneDoubles& base, double one_minus_alpha,
                std::uint64_t live_mask, LaneDoubles& diff, std::size_t lo,
                std::size_t hi) {
  const std::size_t lanes = batch.lanes;
  LaneDoubles acc;
  for (std::size_t v = lo; v < hi; ++v) {
    const std::uint64_t v_active = state.active_mask[v];
    const std::uint64_t v_update = v_active & live_mask;
    // Frozen (converged) and inactive lanes keep their current value so the
    // buffers can be swapped; accumulate only for live active lanes.
    for (std::size_t k = 0; k < lanes; ++k) {
      acc[k] = base[k];
    }

    if (v_update != 0) {
      const auto cols = part.in.row_cols(static_cast<VertexId>(v));
      const auto times = part.in.row_times(static_cast<VertexId>(v));
      std::size_t i = 0;
      while (i < cols.size()) {
        const VertexId u = cols[i];
        std::uint64_t run_mask = 0;
        while (i < cols.size() && cols[i] == u) {
          run_mask |= lanes_containing(spec, batch, times[i]);
          ++i;
        }
        std::uint64_t m = run_mask & v_update;
        while (m != 0) {
          const auto k = static_cast<std::size_t>(__builtin_ctzll(m));
          m &= m - 1;
          acc[k] += one_minus_alpha *
                    (x[u * lanes + k] /
                     static_cast<double>(state.out_degree[u * lanes + k]));
        }
      }
    }

    for (std::size_t k = 0; k < lanes; ++k) {
      const std::uint64_t bit = 1ULL << k;
      const double cur = x[v * lanes + k];
      if ((v_active & bit) == 0) {
        x_next[v * lanes + k] = 0.0;
      } else if ((live_mask & bit) == 0) {
        x_next[v * lanes + k] = cur;  // frozen lane
      } else {
        const double next = acc[k];
        diff[k] += std::abs(next - cur);
        x_next[v * lanes + k] = next;
      }
    }
  }
}

}  // namespace

SpmmStats pagerank_spmm(const MultiWindowGraph& part, const WindowSpec& spec,
                        const SpmmBatch& batch, const SpmmWindowState& state,
                        std::span<double> x, std::span<double> scratch,
                        const PagerankParams& params,
                        const par::ForOptions* parallel) {
  const std::size_t n = part.num_local();
  const std::size_t lanes = batch.lanes;
  assert(lanes >= 1 && lanes <= kMaxLanes);
  assert(x.size() == n * lanes && scratch.size() == n * lanes);
  assert(state.lanes == lanes);

  SpmmStats stats;
  stats.lane_stats.assign(lanes, PagerankStats{});

  std::uint64_t live_mask = 0;
  for (std::size_t k = 0; k < lanes; ++k) {
    if (state.num_active[k] > 0) {
      live_mask |= 1ULL << k;
    } else {
      // Empty window: zero the lane and mark it converged immediately.
      for (std::size_t v = 0; v < n; ++v) x[v * lanes + k] = 0.0;
    }
  }

  const double one_minus_alpha = 1.0 - params.alpha;
  double* cur = x.data();
  double* next = scratch.data();

  for (int iter = 0; iter < params.max_iters && live_mask != 0; ++iter) {
    // Per-lane dangling mass from the current vectors.
    LaneDoubles base{};
    LaneDoubles dangling{};
    if (params.redistribute_dangling) {
      for (std::size_t v = 0; v < n; ++v) {
        std::uint64_t m = state.active_mask[v] & live_mask;
        while (m != 0) {
          const auto k = static_cast<std::size_t>(__builtin_ctzll(m));
          m &= m - 1;
          if (state.out_degree[v * lanes + k] == 0) {
            dangling[k] += cur[v * lanes + k];
          }
        }
      }
    }
    for (std::size_t k = 0; k < lanes; ++k) {
      base[k] = state.num_active[k] > 0
                    ? (params.alpha + one_minus_alpha * dangling[k]) /
                          static_cast<double>(state.num_active[k])
                    : 0.0;
    }

    std::span<const double> cur_span(cur, n * lanes);
    std::span<double> next_span(next, n * lanes);
    LaneDoubles diff{};
    if (parallel != nullptr) {
      Mutex diff_mutex;
      par::parallel_for_range(
          0, n, *parallel, [&](std::size_t lo, std::size_t hi) {
            LaneDoubles local{};
            sweep_rows(part, spec, batch, state, cur_span, next_span, base,
                       one_minus_alpha, live_mask, local, lo, hi);
            LockGuard lock(diff_mutex);
            for (std::size_t k = 0; k < lanes; ++k) diff[k] += local[k];
          });
    } else {
      sweep_rows(part, spec, batch, state, cur_span, next_span, base,
                 one_minus_alpha, live_mask, diff, 0, n);
    }

    std::swap(cur, next);
    stats.iterations = iter + 1;
    for (std::size_t k = 0; k < lanes; ++k) {
      const std::uint64_t bit = 1ULL << k;
      if ((live_mask & bit) == 0) continue;
      stats.lane_stats[k].iterations = iter + 1;
      stats.lane_stats[k].final_residual = diff[k];
      if (diff[k] < params.tol) live_mask &= ~bit;
    }
  }

  if (cur != x.data()) {
    std::memcpy(x.data(), cur, n * lanes * sizeof(double));
  }
  return stats;
}

}  // namespace pmpr
