// Compiled SpMM sweep kernels, one per (mask word count, ISA).
//
// A sweep advances every live lane of rows active_rows[lo, hi) by one
// power iteration over the batch-compiled adjacency. All implementations
// perform the *same floating-point operations per lane in the same
// order* — per-lane accumulators are independent, so vectorizing across
// lanes changes nothing about any single lane's add sequence — which is
// what keeps scalar, AVX2, and AVX-512 results bit-identical when run
// serially (the differential dispatch tests rely on this). Every
// multiply-add is an explicit fused multiply-add (std::fma / vfmadd) so
// the contraction the vector kernels perform is also what the scalar and
// reference kernels perform, independent of compiler flags.
//
// The word count W = mask_words_for(lanes) ∈ {1, 2, 4, 8} is a template
// parameter of each kernel; select_spmm_sweep maps the runtime word count
// and ISA to the right instantiation.
#pragma once

#include <cstddef>
#include <cstdint>

#include "pagerank/batch_csr.hpp"
#include "pagerank/simd_dispatch.hpp"
#include "pagerank/window_state.hpp"

namespace pmpr {

/// One compiled sweep over active_rows[lo, hi).
///   x / x_next   n*lanes lane-interleaved current / next iterate
///   base         per-lane teleport + dangling base term (lanes doubles)
///   live_mask    mask_words words of still-iterating lanes
///   diff         per-lane L1 change accumulator (lanes doubles), added to
/// Returns the number of compiled entries traversed (for the
/// edges-traversed counter, flushed once per chunk by the caller).
using SpmmSweepFn = std::uint64_t (*)(
    const CompiledBatchCsr& compiled, const SpmmWindowState& state,
    const double* x, double* x_next, const double* base,
    double one_minus_alpha, const std::uint64_t* live_mask, double* diff,
    std::size_t lo, std::size_t hi);

/// Kernel for `mask_words` ∈ {1, 2, 4, 8} on `isa`. The caller resolves
/// `isa` through resolve_simd first; asking for an ISA that is not built
/// into the binary throws InvariantError.
[[nodiscard]] SpmmSweepFn select_spmm_sweep(std::size_t mask_words,
                                            SimdIsa isa);

namespace detail {
// Per-ISA selection tables, defined in simd_sweep_{scalar,avx2,avx512}.cpp.
// The wide TUs are compiled only when CMake found the -m flags; their
// entries are referenced behind the matching PMPR_HAVE_*_SWEEP guards.
SpmmSweepFn spmm_sweep_scalar(std::size_t mask_words);
SpmmSweepFn spmm_sweep_avx2(std::size_t mask_words);
SpmmSweepFn spmm_sweep_avx512(std::size_t mask_words);
}  // namespace detail

}  // namespace pmpr
