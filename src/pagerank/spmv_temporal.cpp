#include "pagerank/spmv_temporal.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "obs/counters.hpp"

namespace pmpr {

namespace {

double sweep_rows(const MultiWindowGraph& part, Timestamp ts, Timestamp te,
                  const WindowState& state, std::span<const double> x,
                  std::span<double> x_next, double base,
                  double one_minus_alpha, std::size_t lo, std::size_t hi) {
  double diff = 0.0;
  std::uint64_t edges = 0;  // flushed once per chunk, not per edge
  for (std::size_t v = lo; v < hi; ++v) {
    if (state.active[v] == 0) {
      x_next[v] = 0.0;
      continue;
    }
    double sum = 0.0;
    part.in.for_each_active_neighbor(
        static_cast<VertexId>(v), ts, te, [&](VertexId u) {
          sum += x[u] / static_cast<double>(state.out_degree[u]);
          ++edges;
        });
    const double next = base + one_minus_alpha * sum;
    diff += std::abs(next - x[v]);
    x_next[v] = next;
  }
  obs::count(obs::Counter::kEdgesTraversed, edges);
  return diff;
}

double dangling_mass(const WindowState& state, std::span<const double> x) {
  double dangling = 0.0;
  for (std::size_t v = 0; v < x.size(); ++v) {
    if (state.active[v] != 0 && state.out_degree[v] == 0) dangling += x[v];
  }
  return dangling;
}

/// Compiled-layout sweep over active_rows[lo, hi): the window's time filter
/// was applied at compile time, so the inner loop is a plain CSR gather.
/// Same floating-point operations as sweep_rows, in the same order.
double sweep_compiled_rows(const CompiledWindowCsr& compiled,
                           const WindowState& state,
                           std::span<const double> x, std::span<double> x_next,
                           double base, double one_minus_alpha, std::size_t lo,
                           std::size_t hi) {
  double diff = 0.0;
  std::uint64_t edges = 0;  // flushed once per chunk, not per edge
  for (std::size_t r = lo; r < hi; ++r) {
    const VertexId v = compiled.active_rows[r];
    double sum = 0.0;
    const auto nbrs = compiled.row_nbr(v);
    edges += nbrs.size();
    for (const VertexId u : nbrs) {
      sum += x[u] / static_cast<double>(state.out_degree[u]);
    }
    const double next = base + one_minus_alpha * sum;
    diff += std::abs(next - x[v]);
    x_next[v] = next;
  }
  obs::count(obs::Counter::kEdgesTraversed, edges);
  return diff;
}

}  // namespace

PagerankStats pagerank_window_spmv(const WindowState& state,
                                   const CompiledWindowCsr& compiled,
                                   std::span<double> x,
                                   std::span<double> scratch,
                                   const PagerankParams& params,
                                   const par::ForOptions* parallel) {
  const std::size_t n = compiled.num_rows();
  assert(x.size() == n && scratch.size() == n);
  PagerankStats stats;
  if (state.num_active == 0) {
    for (auto& v : x) v = 0.0;
    return stats;
  }
  const auto n_active = static_cast<double>(state.num_active);
  const double one_minus_alpha = 1.0 - params.alpha;

  // Sweeps visit only active rows; inactive rows are forced to the
  // reference kernel's 0.0 once, in both buffers (the reference rewrites
  // them every iteration).
  std::size_t next_active = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (next_active < compiled.active_rows.size() &&
        compiled.active_rows[next_active] == v) {
      ++next_active;
      continue;
    }
    x[v] = 0.0;
    scratch[v] = 0.0;
  }

  double* cur = x.data();
  double* next = scratch.data();
  const std::size_t rows = compiled.active_rows.size();

  for (int iter = 0; iter < params.max_iters; ++iter) {
    std::span<const double> cur_span(cur, n);
    std::span<double> next_span(next, n);
    // Compiled dangling scan: only the precompiled dangling vertices are
    // read, not all n rows.
    double dangling = 0.0;
    if (params.redistribute_dangling) {
      for (const VertexId v : compiled.dangling_rows) dangling += cur[v];
    }
    const double base = (params.alpha + one_minus_alpha * dangling) / n_active;

    double diff = 0.0;
    if (parallel != nullptr) {
      diff = par::parallel_reduce_slots(
          0, rows, 0.0, *parallel,
          [&](std::size_t lo, std::size_t hi) {
            return sweep_compiled_rows(compiled, state, cur_span, next_span,
                                       base, one_minus_alpha, lo, hi);
          },
          [](double a, double b) { return a + b; });
    } else {
      diff = sweep_compiled_rows(compiled, state, cur_span, next_span, base,
                                 one_minus_alpha, 0, rows);
    }

    std::swap(cur, next);
    stats.iterations = iter + 1;
    stats.final_residual = diff;
    if (obs::metrics_enabled()) stats.residuals.push_back(diff);
    if (diff < params.tol) break;
  }
  obs::count(obs::Counter::kIterations,
             static_cast<std::uint64_t>(stats.iterations));
  if (params.redistribute_dangling) {
    obs::count(obs::Counter::kDanglingScanned,
               static_cast<std::uint64_t>(stats.iterations) *
                   compiled.dangling_rows.size());
  }
  if (stats.converged(params)) obs::count(obs::Counter::kLanesConverged);

  if (cur != x.data()) {
    std::copy(cur, cur + n, x.data());
  }
  return stats;
}

PagerankStats pagerank_window_spmv(const MultiWindowGraph& part, Timestamp ts,
                                   Timestamp te, const WindowState& state,
                                   std::span<double> x,
                                   std::span<double> scratch,
                                   const PagerankParams& params,
                                   const par::ForOptions* parallel) {
  const std::size_t n = part.num_local();
  assert(x.size() == n && scratch.size() == n);
  PagerankStats stats;
  if (state.num_active == 0) {
    for (auto& v : x) v = 0.0;
    return stats;
  }
  const auto n_active = static_cast<double>(state.num_active);
  const double one_minus_alpha = 1.0 - params.alpha;

  double* cur = x.data();
  double* next = scratch.data();

  for (int iter = 0; iter < params.max_iters; ++iter) {
    std::span<const double> cur_span(cur, n);
    std::span<double> next_span(next, n);
    const double dangling = params.redistribute_dangling
                                ? dangling_mass(state, cur_span)
                                : 0.0;
    const double base = (params.alpha + one_minus_alpha * dangling) / n_active;

    double diff = 0.0;
    if (parallel != nullptr) {
      diff = par::parallel_reduce(
          0, n, 0.0, *parallel,
          [&](std::size_t lo, std::size_t hi) {
            return sweep_rows(part, ts, te, state, cur_span, next_span, base,
                              one_minus_alpha, lo, hi);
          },
          [](double a, double b) { return a + b; });
    } else {
      diff = sweep_rows(part, ts, te, state, cur_span, next_span, base,
                        one_minus_alpha, 0, n);
    }

    std::swap(cur, next);
    stats.iterations = iter + 1;
    stats.final_residual = diff;
    if (obs::metrics_enabled()) stats.residuals.push_back(diff);
    if (diff < params.tol) break;
  }
  obs::count(obs::Counter::kIterations,
             static_cast<std::uint64_t>(stats.iterations));
  if (params.redistribute_dangling) {
    obs::count(obs::Counter::kDanglingScanned,
               static_cast<std::uint64_t>(stats.iterations) * n);
  }
  if (stats.converged(params)) obs::count(obs::Counter::kLanesConverged);

  if (cur != x.data()) {
    std::copy(cur, cur + n, x.data());
  }
  return stats;
}

}  // namespace pmpr
