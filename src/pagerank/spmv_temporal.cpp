#include "pagerank/spmv_temporal.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace pmpr {

namespace {

double sweep_rows(const MultiWindowGraph& part, Timestamp ts, Timestamp te,
                  const WindowState& state, std::span<const double> x,
                  std::span<double> x_next, double base,
                  double one_minus_alpha, std::size_t lo, std::size_t hi) {
  double diff = 0.0;
  for (std::size_t v = lo; v < hi; ++v) {
    if (state.active[v] == 0) {
      x_next[v] = 0.0;
      continue;
    }
    double sum = 0.0;
    part.in.for_each_active_neighbor(
        static_cast<VertexId>(v), ts, te, [&](VertexId u) {
          sum += x[u] / static_cast<double>(state.out_degree[u]);
        });
    const double next = base + one_minus_alpha * sum;
    diff += std::abs(next - x[v]);
    x_next[v] = next;
  }
  return diff;
}

double dangling_mass(const WindowState& state, std::span<const double> x) {
  double dangling = 0.0;
  for (std::size_t v = 0; v < x.size(); ++v) {
    if (state.active[v] != 0 && state.out_degree[v] == 0) dangling += x[v];
  }
  return dangling;
}

}  // namespace

PagerankStats pagerank_window_spmv(const MultiWindowGraph& part, Timestamp ts,
                                   Timestamp te, const WindowState& state,
                                   std::span<double> x,
                                   std::span<double> scratch,
                                   const PagerankParams& params,
                                   const par::ForOptions* parallel) {
  const std::size_t n = part.num_local();
  assert(x.size() == n && scratch.size() == n);
  PagerankStats stats;
  if (state.num_active == 0) {
    for (auto& v : x) v = 0.0;
    return stats;
  }
  const auto n_active = static_cast<double>(state.num_active);
  const double one_minus_alpha = 1.0 - params.alpha;

  double* cur = x.data();
  double* next = scratch.data();

  for (int iter = 0; iter < params.max_iters; ++iter) {
    std::span<const double> cur_span(cur, n);
    std::span<double> next_span(next, n);
    const double dangling = params.redistribute_dangling
                                ? dangling_mass(state, cur_span)
                                : 0.0;
    const double base = (params.alpha + one_minus_alpha * dangling) / n_active;

    double diff = 0.0;
    if (parallel != nullptr) {
      diff = par::parallel_reduce(
          0, n, 0.0, *parallel,
          [&](std::size_t lo, std::size_t hi) {
            return sweep_rows(part, ts, te, state, cur_span, next_span, base,
                              one_minus_alpha, lo, hi);
          },
          [](double a, double b) { return a + b; });
    } else {
      diff = sweep_rows(part, ts, te, state, cur_span, next_span, base,
                        one_minus_alpha, 0, n);
    }

    std::swap(cur, next);
    stats.iterations = iter + 1;
    stats.final_residual = diff;
    if (diff < params.tol) break;
  }

  if (cur != x.data()) {
    std::copy(cur, cur + n, x.data());
  }
  return stats;
}

}  // namespace pmpr
