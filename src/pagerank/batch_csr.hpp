// Batch-compiled adjacency: the per-iteration-invariant structure of an
// SpMM batch (or a single window) compiled into the representation once.
//
// The reference kernels re-derive each event's lane membership
// (lanes_containing -> WindowSpec::windows_containing) and re-scan
// duplicate <neighbor, time> runs on every edge of every power iteration,
// and sweep all n rows even when the batch touches a fraction of them.
// All of that depends only on (part, spec, batch) — never on the iterate —
// so it is hoisted into a one-time per-batch build:
//
//   * run compression: per row, only the *distinct* in-neighbors, each
//     with a precomputed multi-word lane mask (runs whose mask is all-zero
//     are dropped entirely), in a flat SoA layout (nbr[] / mask[]);
//   * active-row compaction: sweeps iterate active_rows — rows active in
//     at least one lane — instead of all n rows;
//   * dangling compaction: the per-iteration dangling-mass scan reads the
//     dangling_rows / dangling_mask lists (vertices dangling in at least
//     one lane) instead of rescanning the n-by-lanes degree matrix.
//
// The SpMM inner loop then becomes: load u, load mask words, AND the live
// mask, fused multiply-add per set bit — no timestamp arithmetic. The
// compiled kernels (scalar and the AVX2/AVX-512 sweeps of
// simd_sweep_*.cpp) execute the exact floating-point operations of the
// reference kernels with the same per-lane order, so results, residuals,
// and iteration counts are bit-identical when run serially
// (tests/pagerank/compiled_kernels_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/multi_window.hpp"
#include "graph/window.hpp"
#include "obs/memory.hpp"
#include "pagerank/window_state.hpp"

namespace pmpr {

/// Compiled form of one SpMM batch over a part's local vertex space.
struct CompiledBatchCsr {
  std::size_t lanes = 0;
  /// Words per lane mask: mask_words_for(lanes) ∈ {1, 2, 4, 8}. Every mask
  /// in this struct (entry masks, dangling masks) is this many words.
  std::size_t mask_words = 1;

  /// n + 1 offsets into nbr (and, scaled by mask_words, into mask). A row
  /// holds the distinct in-neighbors (ascending, inherited from the
  /// temporal CSR's row order) whose run intersects at least one lane's
  /// window.
  std::vector<std::size_t> row_ptr;
  std::vector<VertexId> nbr;
  /// mask_words words per nbr entry (entry i owns
  /// mask[i*mask_words .. (i+1)*mask_words)); never all-zero.
  std::vector<std::uint64_t> mask;

  /// Rows v active in at least one lane, ascending. Sweeps visit only
  /// these.
  std::vector<VertexId> active_rows;

  /// Rows dangling (active with out-degree 0) in at least one lane,
  /// ascending, with the multi-word mask of those lanes (mask_words words
  /// per row).
  std::vector<VertexId> dangling_rows;
  std::vector<std::uint64_t> dangling_mask;

  [[nodiscard]] std::size_t num_rows() const {
    return row_ptr.empty() ? 0 : row_ptr.size() - 1;
  }
  [[nodiscard]] std::span<const VertexId> row_nbr(VertexId v) const {
    return {nbr.data() + row_ptr[v], nbr.data() + row_ptr[v + 1]};
  }
  /// All mask words of row v: (row_ptr[v+1] - row_ptr[v]) * mask_words
  /// values, mask_words per entry.
  [[nodiscard]] std::span<const std::uint64_t> row_mask(VertexId v) const {
    return {mask.data() + row_ptr[v] * mask_words,
            mask.data() + row_ptr[v + 1] * mask_words};
  }
  /// Mask words of global entry i (an index into nbr).
  [[nodiscard]] const std::uint64_t* entry_mask(std::size_t i) const {
    return mask.data() + i * mask_words;
  }

  /// Bytes held by the compiled form (reported through memory_budget so
  /// the multi-window partitioner accounts for it).
  [[nodiscard]] std::size_t memory_bytes() const {
    return row_ptr.size() * sizeof(std::size_t) +
           nbr.size() * sizeof(VertexId) +
           mask.size() * sizeof(std::uint64_t) +
           active_rows.size() * sizeof(VertexId) +
           dangling_rows.size() * sizeof(VertexId) +
           dangling_mask.size() * sizeof(std::uint64_t);
  }

  /// memory_bytes() under MemTag::kCompiledKernel, refreshed by
  /// compile_spmm_batch.
  obs::MemCharge charge;
};

/// Builds `state` and `out` together: one run-compression pass replaces
/// compute_spmm_state's scatter (which duplicated the run-scan +
/// lanes_containing logic) and simultaneously emits the compiled
/// adjacency. `state` after the call is identical to what
/// compute_spmm_state produces. Non-null `parallel` runs the row passes
/// as parallel_fors. Throws InvariantError when batch.lanes is outside
/// [1, kMaxSpmmLanes].
///
/// Compressed parts (part.is_compressed()) stream: the passes decode one
/// chunk at a time into scratch — the raw CSR is never materialized — and
/// skip chunks whose time extent misses the batch's lane windows
/// (obs kChunksDecoded / kChunksPruned). The per-row arithmetic is shared
/// with the raw path, so the compiled form and `state` are bit-identical.
/// `scratch` (serial path only; the parallel path allocates per callback)
/// lets callers reuse decode buffers across batches; null uses a local.
void compile_spmm_batch(const MultiWindowGraph& part, const WindowSpec& spec,
                        const SpmmBatch& batch, SpmmWindowState& state,
                        CompiledBatchCsr& out,
                        const par::ForOptions* parallel = nullptr,
                        io::DecodeScratch* scratch = nullptr);

/// Compiled form of a single window (the SpMV path): distinct in-neighbors
/// with at least one event in the window, plus the compacted active and
/// dangling vertex lists.
struct CompiledWindowCsr {
  std::vector<std::size_t> row_ptr;  ///< n + 1 offsets into nbr.
  std::vector<VertexId> nbr;         ///< Distinct active in-neighbors.
  std::vector<VertexId> active_rows;   ///< Rows with state.active != 0.
  std::vector<VertexId> dangling_rows;  ///< Active rows with out-degree 0.

  [[nodiscard]] std::size_t num_rows() const {
    return row_ptr.empty() ? 0 : row_ptr.size() - 1;
  }
  [[nodiscard]] std::span<const VertexId> row_nbr(VertexId v) const {
    return {nbr.data() + row_ptr[v], nbr.data() + row_ptr[v + 1]};
  }

  [[nodiscard]] std::size_t memory_bytes() const {
    return row_ptr.size() * sizeof(std::size_t) +
           (nbr.size() + active_rows.size() + dangling_rows.size()) *
               sizeof(VertexId);
  }

  /// memory_bytes() under MemTag::kCompiledKernel, refreshed by
  /// compile_window.
  obs::MemCharge charge;
};

/// Builds `state` and `out` for window [ts, te] together (state identical
/// to compute_window_state's result). Streams compressed parts chunk by
/// chunk with [ts, te] pruning, like compile_spmm_batch.
void compile_window(const MultiWindowGraph& part, Timestamp ts, Timestamp te,
                    WindowState& state, CompiledWindowCsr& out,
                    const par::ForOptions* parallel = nullptr,
                    io::DecodeScratch* scratch = nullptr);

}  // namespace pmpr
