#include "pagerank/window_state.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>

#include "util/check.hpp"

namespace pmpr {

namespace {

/// Scatter pass over rows [lo, hi): every active in-edge (u -> v) marks both
/// endpoints active and bumps u's distinct out-degree. `Atomic` selects
/// std::atomic_ref increments for the parallel path.
template <bool Atomic>
void scatter_window_rows(const MultiWindowGraph& part, Timestamp ts,
                         Timestamp te, WindowState& out, std::size_t lo,
                         std::size_t hi) {
  for (std::size_t v = lo; v < hi; ++v) {
    bool v_active = false;
    part.in.for_each_active_neighbor(
        static_cast<VertexId>(v), ts, te, [&](VertexId u) {
          v_active = true;
          if constexpr (Atomic) {
            std::atomic_ref<std::uint32_t> deg(out.out_degree[u]);
            // relaxed: pure commutative count; published by the join.
            deg.fetch_add(1, std::memory_order_relaxed);
            std::atomic_ref<std::uint8_t> act(out.active[u]);
            // relaxed: idempotent flag; published by the join.
            act.store(1, std::memory_order_relaxed);
          } else {
            ++out.out_degree[u];
            out.active[u] = 1;
          }
        });
    if (v_active) {
      if constexpr (Atomic) {
        std::atomic_ref<std::uint8_t> act(out.active[v]);
        // relaxed: idempotent flag; published by the join.
        act.store(1, std::memory_order_relaxed);
      } else {
        out.active[v] = 1;
      }
    }
  }
}

}  // namespace

void compute_window_state(const MultiWindowGraph& part, Timestamp ts,
                          Timestamp te, WindowState& out,
                          const par::ForOptions* parallel) {
  PMPR_CHECK_MSG(!part.is_compressed(),
                 "compute_window_state reads the raw in-CSR; compressed "
                 "parts require the streaming compile (compile_window)");
  const std::size_t n = part.num_local();
  out.resize(n);
  if (parallel != nullptr) {
    par::parallel_for_range(0, n, *parallel,
                            [&](std::size_t lo, std::size_t hi) {
                              scatter_window_rows<true>(part, ts, te, out, lo,
                                                        hi);
                            });
    out.num_active = par::parallel_reduce(
        0, n, std::size_t{0}, *parallel,
        [&](std::size_t lo, std::size_t hi) {
          std::size_t c = 0;
          for (std::size_t v = lo; v < hi; ++v) c += out.active[v];
          return c;
        },
        [](std::size_t a, std::size_t b) { return a + b; });
  } else {
    scatter_window_rows<false>(part, ts, te, out, 0, n);
    out.num_active = 0;
    for (std::size_t v = 0; v < n; ++v) out.num_active += out.active[v];
  }
}

LaneSpan lane_span_containing(const WindowSpec& spec, const SpmmBatch& batch,
                              Timestamp t) {
  const auto [wlo, whi] = spec.windows_containing(t);  // [wlo, whi)
  if (wlo >= whi) return {};
  // Lane k holds window first_window + k*stride; find the k range
  // intersecting [wlo, whi). The range is contiguous in k.
  const auto first = static_cast<std::int64_t>(batch.first_window);
  const auto stride = static_cast<std::int64_t>(batch.window_stride);
  const auto lo_num = static_cast<std::int64_t>(wlo) - first;
  const auto hi_num = static_cast<std::int64_t>(whi) - 1 - first;
  if (hi_num < 0) return {};
  const std::int64_t k_lo = lo_num <= 0 ? 0 : (lo_num + stride - 1) / stride;
  std::int64_t k_hi = hi_num / stride;
  k_hi = std::min<std::int64_t>(k_hi,
                                static_cast<std::int64_t>(batch.lanes) - 1);
  if (k_lo > k_hi) return {};
  return {static_cast<std::size_t>(k_lo), static_cast<std::size_t>(k_hi)};
}

void lanes_containing_into(const WindowSpec& spec, const SpmmBatch& batch,
                           Timestamp t, std::uint64_t* words) {
  const LaneSpan span = lane_span_containing(spec, batch, t);
  if (!span.empty()) mask_set_range(words, span.lo, span.hi);
}

std::uint64_t lanes_containing(const WindowSpec& spec, const SpmmBatch& batch,
                               Timestamp t) {
  assert(batch.lanes <= 64);
  std::uint64_t word = 0;
  lanes_containing_into(spec, batch, t, &word);
  return word;
}

namespace {

/// Max-width run mask on the stack; only the first mask_words_for(lanes)
/// words are touched.
using RunMask = std::array<std::uint64_t, mask_words_for(kMaxSpmmLanes)>;

template <bool Atomic>
void scatter_spmm_rows(const MultiWindowGraph& part, const WindowSpec& spec,
                       const SpmmBatch& batch, SpmmWindowState& out,
                       std::size_t lo, std::size_t hi) {
  const std::size_t lanes = batch.lanes;
  const std::size_t words = out.mask_words;
  for (std::size_t v = lo; v < hi; ++v) {
    const auto cols = part.in.row_cols(static_cast<VertexId>(v));
    const auto times = part.in.row_times(static_cast<VertexId>(v));
    RunMask v_mask{};
    std::size_t i = 0;
    while (i < cols.size()) {
      const VertexId u = cols[i];
      RunMask run_mask{};
      while (i < cols.size() && cols[i] == u) {
        lanes_containing_into(spec, batch, times[i], run_mask.data());
        ++i;
      }
      if (!mask_any(run_mask.data(), words)) continue;
      // u gains one distinct out-neighbor in every lane of run_mask.
      for_each_set_lane(run_mask.data(), words, [&](std::size_t k) {
        if constexpr (Atomic) {
          std::atomic_ref<std::uint32_t> deg(out.out_degree[u * lanes + k]);
          // relaxed: pure commutative count; published by the join.
          deg.fetch_add(1, std::memory_order_relaxed);
        } else {
          ++out.out_degree[u * lanes + k];
        }
      });
      for (std::size_t w = 0; w < words; ++w) {
        v_mask[w] |= run_mask[w];
        if (run_mask[w] == 0) continue;
        if constexpr (Atomic) {
          std::atomic_ref<std::uint64_t> mask(out.active_mask[u * words + w]);
          // relaxed: commutative bit-set; published by the join.
          mask.fetch_or(run_mask[w], std::memory_order_relaxed);
        } else {
          out.active_mask[u * words + w] |= run_mask[w];
        }
      }
    }
    for (std::size_t w = 0; w < words; ++w) {
      if (v_mask[w] == 0) continue;
      if constexpr (Atomic) {
        std::atomic_ref<std::uint64_t> mask(out.active_mask[v * words + w]);
        // relaxed: commutative bit-set; published by the join.
        mask.fetch_or(v_mask[w], std::memory_order_relaxed);
      } else {
        out.active_mask[v * words + w] |= v_mask[w];
      }
    }
  }
}

}  // namespace

void compute_spmm_state(const MultiWindowGraph& part, const WindowSpec& spec,
                        const SpmmBatch& batch, SpmmWindowState& out,
                        const par::ForOptions* parallel) {
  // Release-mode check: an oversized lane count would index past the mask
  // words (shift UB in release before PR 6's multi-word masks).
  PMPR_CHECK_MSG(batch.lanes >= 1 && batch.lanes <= kMaxSpmmLanes,
                 "SpMM batch lanes " << batch.lanes << " outside [1, "
                                     << kMaxSpmmLanes << "]");
  PMPR_CHECK_MSG(!part.is_compressed(),
                 "compute_spmm_state reads the raw in-CSR; compressed "
                 "parts require the streaming compile (compile_spmm_batch)");
  const std::size_t n = part.num_local();
  out.resize(n, batch.lanes);
  if (parallel != nullptr) {
    par::parallel_for_range(
        0, n, *parallel, [&](std::size_t lo, std::size_t hi) {
          scatter_spmm_rows<true>(part, spec, batch, out, lo, hi);
        });
  } else {
    scatter_spmm_rows<false>(part, spec, batch, out, 0, n);
  }
  for (std::size_t v = 0; v < n; ++v) {
    for_each_set_lane(out.mask_of(v), out.mask_words,
                      [&](std::size_t k) { ++out.num_active[k]; });
  }
}

}  // namespace pmpr
