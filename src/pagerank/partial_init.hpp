// Partial initialization (paper §4.2, Eq. 4).
//
// Two consecutive sliding windows share most vertices and edges, so the
// previous window's converged PageRank is a much better starting point than
// the uniform vector. For u ∈ V_i ∩ V_{i-1}:
//
//   PR_i[u] = (|V_i ∩ V_{i-1}| / |V_i|) · PR_{i-1}[u] / Σ_{v ∈ V_i ∩ V_{i-1}} PR_{i-1}[v]
//
// i.e. the shared vertices are rescaled to carry |shared|/|V_i| of the total
// mass; vertices new to V_i receive the uniform 1/|V_i|, so the initial
// vector is a distribution. Falls back to full initialization when the
// windows share nothing. Only applied within one multi-window graph — the
// local vertex spaces of different parts differ, and the paper skips
// cross-part initialization for the same reason.
#pragma once

#include <cstdint>
#include <span>

namespace pmpr {

/// `prev_x` / `prev_active`: the previous window's result and active set.
/// `cur_active` / `cur_num_active`: the new window's active set.
/// Writes the initial guess for the new window into `out` (may alias
/// prev_x). All spans share one local vertex space.
void partial_init(std::span<const double> prev_x,
                  std::span<const std::uint8_t> prev_active,
                  std::span<const std::uint8_t> cur_active,
                  std::size_t cur_num_active, std::span<double> out);

}  // namespace pmpr
