// AVX2 + FMA SpMM sweep: 4 lanes per vector op, lane-group iteration over
// each mask word's nibbles. Compiled with -mavx2 -mfma (see
// src/CMakeLists.txt) and only invoked after runtime dispatch confirmed
// CPU support (simd_dispatch.cpp).
//
// Bit-identity with the scalar kernel: per-lane accumulators are
// independent, every multiply-add is a vfmadd (matching the scalar
// std::fma), and lanes not selected by a mask nibble are merged back
// untouched with blendv — so each lane sees exactly the scalar kernel's
// operation sequence. Masked-off lanes of a group may compute 0/0 inside
// the discarded div result; the blend throws those bits away.
#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "pagerank/simd_sweep.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace pmpr::detail {

namespace {

constexpr std::size_t kPrefetchEntries = 8;  // matches the scalar kernel
constexpr std::size_t kRowTile = 64;

/// Per-element all-ones/zero expansion of every 4-bit lane-group pattern.
/// blendv / maskload / maskstore read each 64-bit element's sign bit.
alignas(32) constexpr std::uint64_t kGroupMask64[16][4] = {
    {0, 0, 0, 0},
    {~0ULL, 0, 0, 0},
    {0, ~0ULL, 0, 0},
    {~0ULL, ~0ULL, 0, 0},
    {0, 0, ~0ULL, 0},
    {~0ULL, 0, ~0ULL, 0},
    {0, ~0ULL, ~0ULL, 0},
    {~0ULL, ~0ULL, ~0ULL, 0},
    {0, 0, 0, ~0ULL},
    {~0ULL, 0, 0, ~0ULL},
    {0, ~0ULL, 0, ~0ULL},
    {~0ULL, ~0ULL, 0, ~0ULL},
    {0, 0, ~0ULL, ~0ULL},
    {~0ULL, 0, ~0ULL, ~0ULL},
    {0, ~0ULL, ~0ULL, ~0ULL},
    {~0ULL, ~0ULL, ~0ULL, ~0ULL},
};

/// 32-bit variant for the _mm_maskload_epi32 of the degree row.
alignas(16) constexpr std::uint32_t kGroupMask32[16][4] = {
    {0, 0, 0, 0},
    {~0U, 0, 0, 0},
    {0, ~0U, 0, 0},
    {~0U, ~0U, 0, 0},
    {0, 0, ~0U, 0},
    {~0U, 0, ~0U, 0},
    {0, ~0U, ~0U, 0},
    {~0U, ~0U, ~0U, 0},
    {0, 0, 0, ~0U},
    {~0U, 0, 0, ~0U},
    {0, ~0U, 0, ~0U},
    {~0U, ~0U, 0, ~0U},
    {0, 0, ~0U, ~0U},
    {~0U, 0, ~0U, ~0U},
    {0, ~0U, ~0U, ~0U},
    {~0U, ~0U, ~0U, ~0U},
};

inline __m256i group_mask_si(unsigned nib) {
  return _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kGroupMask64[nib]));
}
inline __m256d group_mask_pd(unsigned nib) {
  return _mm256_castsi256_pd(group_mask_si(nib));
}
inline __m128i group_mask_si32(unsigned nib) {
  return _mm_load_si128(reinterpret_cast<const __m128i*>(kGroupMask32[nib]));
}

template <std::size_t W>
std::uint64_t sweep_avx2(const CompiledBatchCsr& compiled,
                         const SpmmWindowState& state, const double* x,
                         double* x_next, const double* base,
                         double one_minus_alpha,
                         const std::uint64_t* live_mask, double* diff,
                         std::size_t lo, std::size_t hi) {
  const std::size_t lanes = compiled.lanes;
  const std::uint32_t* deg = state.out_degree.data();
  const VertexId* nbr = compiled.nbr.data();
  const std::uint64_t* masks = compiled.mask.data();
  const __m256d omav = _mm256_set1_pd(one_minus_alpha);
  const __m256d signv = _mm256_set1_pd(-0.0);
  alignas(64) double acc[W * kLanesPerMaskWord];
  std::uint64_t edges = 0;
  for (std::size_t tile = lo; tile < hi; tile += kRowTile) {
    const std::size_t tile_hi = std::min(hi, tile + kRowTile);
    if (tile_hi < hi) {
      __builtin_prefetch(&compiled.active_rows[tile_hi]);
      __builtin_prefetch(&compiled.row_ptr[compiled.active_rows[tile_hi]]);
    }
    for (std::size_t r = tile; r < tile_hi; ++r) {
      const VertexId v = compiled.active_rows[r];
      const std::uint64_t* v_active = state.mask_of(v);
      std::uint64_t v_update[W];
      std::uint64_t any = 0;
      for (std::size_t w = 0; w < W; ++w) {
        v_update[w] = v_active[w] & live_mask[w];
        any |= v_update[w];
      }
      for (std::size_t k = 0; k < lanes; ++k) acc[k] = base[k];

      if (any != 0) {
        const std::size_t e_lo = compiled.row_ptr[v];
        const std::size_t e_hi = compiled.row_ptr[v + 1];
        edges += e_hi - e_lo;
        for (std::size_t i = e_lo; i < e_hi; ++i) {
          if (i + kPrefetchEntries < e_hi) {
            const VertexId up = nbr[i + kPrefetchEntries];
            __builtin_prefetch(&x[static_cast<std::size_t>(up) * lanes]);
            __builtin_prefetch(&deg[static_cast<std::size_t>(up) * lanes]);
          }
          const std::size_t u = nbr[i];
          const double* xu = x + u * lanes;
          const std::uint32_t* du = deg + u * lanes;
          for (std::size_t w = 0; w < W; ++w) {
            std::uint64_t m = masks[i * W + w] & v_update[w];
            while (m != 0) {
              const std::size_t g = ctz64(m) >> 2;  // 4-lane group
              const unsigned nib =
                  static_cast<unsigned>(m >> (g * 4)) & 0xFU;
              m &= ~(std::uint64_t{0xF} << (g * 4));
              const std::size_t base_lane = w * kLanesPerMaskWord + g * 4;
              const __m256i lane_si = group_mask_si(nib);
              const __m256d xv =
                  _mm256_maskload_pd(xu + base_lane, lane_si);
              const __m128i dv32 = _mm_maskload_epi32(
                  reinterpret_cast<const int*>(du + base_lane),
                  group_mask_si32(nib));
              // Signed cvt (AVX2 has no unsigned u32->f64): requires
              // per-window degrees < 2^31, i.e. fewer than 2B events out
              // of one vertex inside one window.
              const __m256d dv = _mm256_cvtepi32_pd(dv32);
              __m256d accv = _mm256_loadu_pd(acc + base_lane);
              const __m256d contrib =
                  _mm256_fmadd_pd(omav, _mm256_div_pd(xv, dv), accv);
              accv = _mm256_blendv_pd(accv, contrib,
                                      _mm256_castsi256_pd(lane_si));
              _mm256_storeu_pd(acc + base_lane, accv);
            }
          }
        }
      }

      for (std::size_t k0 = 0; k0 < lanes; k0 += 4) {
        const std::size_t w = k0 / kLanesPerMaskWord;
        const unsigned shift =
            static_cast<unsigned>(k0 % kLanesPerMaskWord);
        const unsigned a_nib =
            static_cast<unsigned>(v_active[w] >> shift) & 0xFU;
        const unsigned l_nib =
            static_cast<unsigned>(live_mask[w] >> shift) & 0xFU;
        const unsigned al_nib = a_nib & l_nib;
        const std::size_t rem = lanes - k0;
        const unsigned valid_nib = rem >= 4 ? 0xFU : ((1U << rem) - 1U);
        const __m256i valid_si = group_mask_si(valid_nib);
        const __m256d cur =
            _mm256_maskload_pd(x + v * lanes + k0, valid_si);
        const __m256d accv = _mm256_loadu_pd(acc + k0);
        // !active -> 0.0; active & frozen -> cur; active & live -> acc.
        __m256d next = _mm256_and_pd(cur, group_mask_pd(a_nib));
        next = _mm256_blendv_pd(next, accv, group_mask_pd(al_nib));
        _mm256_maskstore_pd(x_next + v * lanes + k0, valid_si, next);
        if (al_nib != 0) {
          const __m256d d =
              _mm256_andnot_pd(signv, _mm256_sub_pd(accv, cur));
          __m256d diffv = _mm256_maskload_pd(diff + k0, valid_si);
          diffv =
              _mm256_add_pd(diffv, _mm256_and_pd(d, group_mask_pd(al_nib)));
          _mm256_maskstore_pd(diff + k0, valid_si, diffv);
        }
      }
    }
  }
  return edges;
}

}  // namespace

SpmmSweepFn spmm_sweep_avx2(std::size_t mask_words) {
  switch (mask_words) {
    case 1:
      return sweep_avx2<1>;
    case 2:
      return sweep_avx2<2>;
    case 4:
      return sweep_avx2<4>;
    case 8:
      return sweep_avx2<8>;
    default:
      PMPR_CHECK_MSG(false, "mask_words " << mask_words
                                          << " not in {1, 2, 4, 8}");
      return nullptr;  // unreachable
  }
}

}  // namespace pmpr::detail
