// PageRank on a static window graph (pull-style power iteration).
//
// The paper's Eq. 1 with α as the *teleportation* probability:
//   PR(v) = α/|V| + (1-α) · Σ_{u ∈ Γ-(v)} PR(u)/|Γ+(u)|
// where |V| is the number of active vertices of the window. Mass from
// dangling active vertices (out-degree 0) is redistributed uniformly so the
// vector stays a distribution; this is applied identically in all three
// execution models, keeping them numerically comparable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "par/parallel_for.hpp"

namespace pmpr {

struct PagerankParams {
  double alpha = 0.15;    ///< Teleportation probability (paper's α).
  double tol = 1e-9;      ///< L1 convergence threshold.
  int max_iters = 100;    ///< Iteration cap (standard practice, §2.2).
  bool redistribute_dangling = true;
};

struct PagerankStats {
  int iterations = 0;
  double final_residual = 0.0;  ///< L1 change of the last iteration.
  /// Per-iteration L1 residuals (the convergence trajectory). Recorded
  /// only while obs::set_metrics_enabled(true) — empty otherwise, so the
  /// kernels stay allocation-free on the default path.
  std::vector<double> residuals;
  [[nodiscard]] bool converged(const PagerankParams& p) const {
    return final_residual < p.tol;
  }
};

/// Fills `x` with the uniform distribution over active vertices (1/|V_i|)
/// and zero elsewhere — the "full initialization" baseline of Fig. 6.
void full_init(std::span<const std::uint8_t> active, std::size_t num_active,
               std::span<double> x);

/// Runs PageRank on `g`. `x` holds the initial guess on entry (a valid
/// distribution over g's active set) and the result on exit. `scratch` must
/// match x in size. If `parallel` is non-null the per-iteration sweep runs
/// as a parallel_for with those options; otherwise it is sequential.
PagerankStats pagerank(const WindowGraph& g, std::span<double> x,
                       std::span<double> scratch, const PagerankParams& params,
                       const par::ForOptions* parallel = nullptr);

}  // namespace pmpr
