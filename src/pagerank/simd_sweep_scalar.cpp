// Scalar (ctz-loop) SpMM sweep — the always-built fallback and the
// bit-identity reference for the AVX2/AVX-512 kernels. See simd_sweep.hpp
// for the contract.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "pagerank/simd_sweep.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace pmpr::detail {

namespace {

/// Entries ahead of the current one whose x/deg rows are prefetched: deep
/// enough to cover an L2 miss at the inner loop's pace, shallow enough not
/// to thrash short rows. Shared with the wide kernels (documented in
/// DESIGN.md §5.2).
constexpr std::size_t kPrefetchEntries = 8;

/// Active rows processed per tile; the next tile's row list and offsets
/// are prefetched while the current one is swept, and the tile bounds the
/// x_next write-stream footprint.
constexpr std::size_t kRowTile = 64;

template <std::size_t W>
std::uint64_t sweep_scalar(const CompiledBatchCsr& compiled,
                           const SpmmWindowState& state, const double* x,
                           double* x_next, const double* base,
                           double one_minus_alpha,
                           const std::uint64_t* live_mask, double* diff,
                           std::size_t lo, std::size_t hi) {
  const std::size_t lanes = compiled.lanes;
  const std::uint32_t* deg = state.out_degree.data();
  const VertexId* nbr = compiled.nbr.data();
  const std::uint64_t* masks = compiled.mask.data();
  alignas(64) double acc[W * kLanesPerMaskWord];
  std::uint64_t edges = 0;
  for (std::size_t tile = lo; tile < hi; tile += kRowTile) {
    const std::size_t tile_hi = std::min(hi, tile + kRowTile);
    if (tile_hi < hi) {
      __builtin_prefetch(&compiled.active_rows[tile_hi]);
      __builtin_prefetch(&compiled.row_ptr[compiled.active_rows[tile_hi]]);
    }
    for (std::size_t r = tile; r < tile_hi; ++r) {
      const VertexId v = compiled.active_rows[r];
      const std::uint64_t* v_active = state.mask_of(v);
      std::uint64_t v_update[W];
      std::uint64_t any = 0;
      for (std::size_t w = 0; w < W; ++w) {
        v_update[w] = v_active[w] & live_mask[w];
        any |= v_update[w];
      }
      // Frozen (converged) and inactive lanes keep their current value so
      // the buffers can be swapped; accumulate only for live active lanes.
      for (std::size_t k = 0; k < lanes; ++k) acc[k] = base[k];

      if (any != 0) {
        const std::size_t e_lo = compiled.row_ptr[v];
        const std::size_t e_hi = compiled.row_ptr[v + 1];
        edges += e_hi - e_lo;
        for (std::size_t i = e_lo; i < e_hi; ++i) {
          if (i + kPrefetchEntries < e_hi) {
            const VertexId up = nbr[i + kPrefetchEntries];
            __builtin_prefetch(&x[static_cast<std::size_t>(up) * lanes]);
            __builtin_prefetch(&deg[static_cast<std::size_t>(up) * lanes]);
          }
          const std::size_t u = nbr[i];
          const double* xu = x + u * lanes;
          const std::uint32_t* du = deg + u * lanes;
          for (std::size_t w = 0; w < W; ++w) {
            std::uint64_t m = masks[i * W + w] & v_update[w];
            while (m != 0) {
              const std::size_t k = w * kLanesPerMaskWord + ctz64(m);
              m &= m - 1;
              acc[k] = std::fma(one_minus_alpha,
                                xu[k] / static_cast<double>(du[k]), acc[k]);
            }
          }
        }
      }

      for (std::size_t k = 0; k < lanes; ++k) {
        const double cur = x[v * lanes + k];
        if (!mask_test(v_active, k)) {
          x_next[v * lanes + k] = 0.0;
        } else if (!mask_test(live_mask, k)) {
          x_next[v * lanes + k] = cur;  // frozen lane
        } else {
          const double next = acc[k];
          diff[k] += std::abs(next - cur);
          x_next[v * lanes + k] = next;
        }
      }
    }
  }
  return edges;
}

}  // namespace

SpmmSweepFn spmm_sweep_scalar(std::size_t mask_words) {
  switch (mask_words) {
    case 1:
      return sweep_scalar<1>;
    case 2:
      return sweep_scalar<2>;
    case 4:
      return sweep_scalar<4>;
    case 8:
      return sweep_scalar<8>;
    default:
      PMPR_CHECK_MSG(false, "mask_words " << mask_words
                                          << " not in {1, 2, 4, 8}");
      return nullptr;  // unreachable
  }
}

}  // namespace pmpr::detail
