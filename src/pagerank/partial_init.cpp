#include "pagerank/partial_init.hpp"

#include <cassert>

#include "obs/counters.hpp"
#include "pagerank/pagerank.hpp"

namespace pmpr {

void partial_init(std::span<const double> prev_x,
                  std::span<const std::uint8_t> prev_active,
                  std::span<const std::uint8_t> cur_active,
                  std::size_t cur_num_active, std::span<double> out) {
  const std::size_t n = out.size();
  assert(prev_x.size() == n && prev_active.size() == n &&
         cur_active.size() == n);
  if (cur_num_active == 0) {
    for (auto& v : out) v = 0.0;
    return;
  }

  std::size_t shared = 0;
  double shared_mass = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    if (prev_active[v] != 0 && cur_active[v] != 0) {
      ++shared;
      shared_mass += prev_x[v];
    }
  }
  if (shared == 0 || shared_mass <= 0.0) {
    // full_init counts every active vertex as re-seeded.
    full_init(cur_active, cur_num_active, out);
    return;
  }
  obs::count(obs::Counter::kVerticesReused, shared);
  obs::count(obs::Counter::kVerticesReseeded, cur_num_active - shared);

  const double uniform = 1.0 / static_cast<double>(cur_num_active);
  const double scale = (static_cast<double>(shared) /
                        static_cast<double>(cur_num_active)) /
                       shared_mass;
  for (std::size_t v = 0; v < n; ++v) {
    if (cur_active[v] == 0) {
      out[v] = 0.0;
    } else if (prev_active[v] != 0) {
      out[v] = prev_x[v] * scale;
    } else {
      out[v] = uniform;
    }
  }
}

}  // namespace pmpr
