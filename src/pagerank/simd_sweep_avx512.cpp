// AVX-512 SpMM sweep: 8 lanes per vector op; each mask-word byte is used
// directly as an __mmask8, so lane-group selection is free. Compiled with
// the -mavx512* flags (see src/CMakeLists.txt) and only invoked after
// runtime dispatch confirmed CPU support (simd_dispatch.cpp).
//
// Bit-identity with the scalar kernel: per-lane accumulators are
// independent, the multiply-add is a masked vfmadd (matching the scalar
// std::fma), and unselected lanes merge through the instruction's own
// masking — each lane sees exactly the scalar kernel's operation
// sequence. Masked-off lanes of a group may compute 0/0 inside the
// discarded div result; the merge-masked fmadd never reads those bits.
#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "pagerank/simd_sweep.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace pmpr::detail {

namespace {

constexpr std::size_t kPrefetchEntries = 8;  // matches the scalar kernel
constexpr std::size_t kRowTile = 64;

template <std::size_t W>
std::uint64_t sweep_avx512(const CompiledBatchCsr& compiled,
                           const SpmmWindowState& state, const double* x,
                           double* x_next, const double* base,
                           double one_minus_alpha,
                           const std::uint64_t* live_mask, double* diff,
                           std::size_t lo, std::size_t hi) {
  const std::size_t lanes = compiled.lanes;
  const std::uint32_t* deg = state.out_degree.data();
  const VertexId* nbr = compiled.nbr.data();
  const std::uint64_t* masks = compiled.mask.data();
  const __m512d omav = _mm512_set1_pd(one_minus_alpha);
  alignas(64) double acc[W * kLanesPerMaskWord];
  std::uint64_t edges = 0;
  for (std::size_t tile = lo; tile < hi; tile += kRowTile) {
    const std::size_t tile_hi = std::min(hi, tile + kRowTile);
    if (tile_hi < hi) {
      __builtin_prefetch(&compiled.active_rows[tile_hi]);
      __builtin_prefetch(&compiled.row_ptr[compiled.active_rows[tile_hi]]);
    }
    for (std::size_t r = tile; r < tile_hi; ++r) {
      const VertexId v = compiled.active_rows[r];
      const std::uint64_t* v_active = state.mask_of(v);
      std::uint64_t v_update[W];
      std::uint64_t any = 0;
      for (std::size_t w = 0; w < W; ++w) {
        v_update[w] = v_active[w] & live_mask[w];
        any |= v_update[w];
      }
      for (std::size_t k = 0; k < lanes; ++k) acc[k] = base[k];

      if (any != 0) {
        const std::size_t e_lo = compiled.row_ptr[v];
        const std::size_t e_hi = compiled.row_ptr[v + 1];
        edges += e_hi - e_lo;
        for (std::size_t i = e_lo; i < e_hi; ++i) {
          if (i + kPrefetchEntries < e_hi) {
            const VertexId up = nbr[i + kPrefetchEntries];
            __builtin_prefetch(&x[static_cast<std::size_t>(up) * lanes]);
            __builtin_prefetch(&deg[static_cast<std::size_t>(up) * lanes]);
          }
          const std::size_t u = nbr[i];
          const double* xu = x + u * lanes;
          const std::uint32_t* du = deg + u * lanes;
          for (std::size_t w = 0; w < W; ++w) {
            std::uint64_t m = masks[i * W + w] & v_update[w];
            while (m != 0) {
              const std::size_t g = ctz64(m) >> 3;  // 8-lane group
              const __mmask8 bits = static_cast<__mmask8>(m >> (g * 8));
              m &= ~(std::uint64_t{0xFF} << (g * 8));
              const std::size_t base_lane = w * kLanesPerMaskWord + g * 8;
              // maskz loads are fault-suppressing per element, so group
              // tails past `lanes` never touch memory (their bits are 0).
              const __m512d xv = _mm512_maskz_loadu_pd(bits, xu + base_lane);
              const __m256i dv32 =
                  _mm256_maskz_loadu_epi32(bits, du + base_lane);
              // maskz (not the unmasked cvt): inactive-lane degrees become
              // 0.0 instead of GCC's _mm512_undefined_pd() merge source,
              // which -Wmaybe-uninitialized rejects in sanitizer builds.
              // The fmadd's write mask discards those lanes either way.
              const __m512d dv = _mm512_maskz_cvtepu32_pd(bits, dv32);
              __m512d accv = _mm512_loadu_pd(acc + base_lane);
              accv = _mm512_mask3_fmadd_pd(omav, _mm512_div_pd(xv, dv), accv,
                                           bits);
              _mm512_storeu_pd(acc + base_lane, accv);
            }
          }
        }
      }

      for (std::size_t k0 = 0; k0 < lanes; k0 += 8) {
        const std::size_t w = k0 / kLanesPerMaskWord;
        const unsigned shift =
            static_cast<unsigned>(k0 % kLanesPerMaskWord);
        const __mmask8 a8 = static_cast<__mmask8>(v_active[w] >> shift);
        const __mmask8 l8 = static_cast<__mmask8>(live_mask[w] >> shift);
        const __mmask8 al8 = a8 & l8;
        const std::size_t rem = lanes - k0;
        const __mmask8 valid8 =
            rem >= 8 ? static_cast<__mmask8>(0xFF)
                     : static_cast<__mmask8>((1U << rem) - 1U);
        const __m512d cur =
            _mm512_maskz_loadu_pd(valid8, x + v * lanes + k0);
        const __m512d accv = _mm512_loadu_pd(acc + k0);
        // !active -> 0.0; active & frozen -> cur; active & live -> acc.
        __m512d next = _mm512_maskz_mov_pd(a8, cur);
        next = _mm512_mask_mov_pd(next, al8, accv);
        _mm512_mask_storeu_pd(x_next + v * lanes + k0, valid8, next);
        if (al8 != 0) {
          const __m512d d = _mm512_abs_pd(_mm512_sub_pd(accv, cur));
          __m512d diffv = _mm512_maskz_loadu_pd(valid8, diff + k0);
          diffv = _mm512_mask_add_pd(diffv, al8, diffv, d);
          _mm512_mask_storeu_pd(diff + k0, valid8, diffv);
        }
      }
    }
  }
  return edges;
}

}  // namespace

SpmmSweepFn spmm_sweep_avx512(std::size_t mask_words) {
  switch (mask_words) {
    case 1:
      return sweep_avx512<1>;
    case 2:
      return sweep_avx512<2>;
    case 4:
      return sweep_avx512<4>;
    case 8:
      return sweep_avx512<8>;
    default:
      PMPR_CHECK_MSG(false, "mask_words " << mask_words
                                          << " not in {1, 2, 4, 8}");
      return nullptr;  // unreachable
  }
}

}  // namespace pmpr::detail
