#include "pagerank/pagerank.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "obs/counters.hpp"

namespace pmpr {

void full_init(std::span<const std::uint8_t> active, std::size_t num_active,
               std::span<double> x) {
  assert(active.size() == x.size());
  const double value =
      num_active > 0 ? 1.0 / static_cast<double>(num_active) : 0.0;
  for (std::size_t v = 0; v < x.size(); ++v) {
    x[v] = active[v] != 0 ? value : 0.0;
  }
  obs::count(obs::Counter::kVerticesReseeded, num_active);
}

namespace {

/// One pull iteration over rows [lo, hi). Returns the partial L1 change.
double sweep_rows(const WindowGraph& g, std::span<const double> x,
                  std::span<double> x_next, double base, double one_minus_alpha,
                  std::size_t lo, std::size_t hi) {
  double diff = 0.0;
  std::uint64_t edges = 0;  // flushed once per chunk, not per edge
  for (std::size_t v = lo; v < hi; ++v) {
    if (g.is_active[v] == 0) {
      x_next[v] = 0.0;
      continue;
    }
    double sum = 0.0;
    const auto nbrs = g.in.neighbors(static_cast<VertexId>(v));
    edges += nbrs.size();
    for (const VertexId u : nbrs) {
      // Any in-neighbor has out-degree >= 1 by construction.
      sum += x[u] / static_cast<double>(g.out_degree[u]);
    }
    const double next = base + one_minus_alpha * sum;
    diff += std::abs(next - x[v]);
    x_next[v] = next;
  }
  obs::count(obs::Counter::kEdgesTraversed, edges);
  return diff;
}

}  // namespace

PagerankStats pagerank(const WindowGraph& g, std::span<double> x,
                       std::span<double> scratch,
                       const PagerankParams& params,
                       const par::ForOptions* parallel) {
  assert(x.size() == g.num_vertices);
  assert(scratch.size() == g.num_vertices);
  PagerankStats stats;
  if (g.num_active == 0) {
    for (auto& v : x) v = 0.0;
    return stats;
  }
  const auto n_active = static_cast<double>(g.num_active);
  const double one_minus_alpha = 1.0 - params.alpha;

  double* cur = x.data();
  double* next = scratch.data();
  const std::size_t n = g.num_vertices;

  for (int iter = 0; iter < params.max_iters; ++iter) {
    // Dangling mass from the *current* vector, before the sweep.
    double dangling = 0.0;
    if (params.redistribute_dangling) {
      for (std::size_t v = 0; v < n; ++v) {
        if (g.is_active[v] != 0 && g.out_degree[v] == 0) dangling += cur[v];
      }
    }
    const double base =
        (params.alpha + one_minus_alpha * dangling) / n_active;

    std::span<const double> cur_span(cur, n);
    std::span<double> next_span(next, n);
    double diff = 0.0;
    if (parallel != nullptr) {
      diff = par::parallel_reduce(
          0, n, 0.0, *parallel,
          [&](std::size_t lo, std::size_t hi) {
            return sweep_rows(g, cur_span, next_span, base, one_minus_alpha,
                              lo, hi);
          },
          [](double a, double b) { return a + b; });
    } else {
      diff = sweep_rows(g, cur_span, next_span, base, one_minus_alpha, 0, n);
    }

    std::swap(cur, next);
    stats.iterations = iter + 1;
    stats.final_residual = diff;
    if (obs::metrics_enabled()) stats.residuals.push_back(diff);
    if (diff < params.tol) break;
  }
  obs::count(obs::Counter::kIterations,
             static_cast<std::uint64_t>(stats.iterations));
  if (params.redistribute_dangling) {
    obs::count(obs::Counter::kDanglingScanned,
               static_cast<std::uint64_t>(stats.iterations) * n);
  }
  if (stats.converged(params)) obs::count(obs::Counter::kLanesConverged);

  if (cur != x.data()) {
    std::copy(cur, cur + n, x.data());
  }
  return stats;
}

}  // namespace pmpr
