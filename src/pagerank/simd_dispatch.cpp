#include "pagerank/simd_dispatch.hpp"

#include "util/check.hpp"

namespace pmpr {

namespace {

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  // The sweep uses 512-bit FP plus 256-bit masked integer loads, so it
  // needs F (foundation), DQ (doubleword/quadword ops), VL (128/256-bit
  // forms of the EVEX instructions) and BW — the common server baseline
  // since Skylake-SP.
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0;
#else
  return false;
#endif
}

}  // namespace

std::string_view to_string(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

std::string_view to_string(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kAvx2:
      return "avx2";
    case SimdMode::kAvx512:
      return "avx512";
  }
  return "auto";
}

SimdMode parse_simd_mode(std::string_view text) {
  if (text == "auto") return SimdMode::kAuto;
  if (text == "scalar") return SimdMode::kScalar;
  if (text == "avx2") return SimdMode::kAvx2;
  if (text == "avx512") return SimdMode::kAvx512;
  PMPR_CHECK_MSG(false, "unknown simd mode '"
                            << std::string(text)
                            << "' (want auto|scalar|avx2|avx512)");
  return SimdMode::kAuto;  // unreachable
}

bool simd_isa_built(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kAvx2:
#if defined(PMPR_HAVE_AVX2_SWEEP)
      return true;
#else
      return false;
#endif
    case SimdIsa::kAvx512:
#if defined(PMPR_HAVE_AVX512_SWEEP)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool simd_isa_supported(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kAvx2:
      return simd_isa_built(isa) && cpu_has_avx2();
    case SimdIsa::kAvx512:
      return simd_isa_built(isa) && cpu_has_avx512();
  }
  return false;
}

SimdIsa detect_simd_isa() {
  // The probes are cheap but the cached value keeps resolve_simd callable
  // from per-batch hot paths without thought.
  static const SimdIsa best = [] {
    if (simd_isa_supported(SimdIsa::kAvx512)) return SimdIsa::kAvx512;
    if (simd_isa_supported(SimdIsa::kAvx2)) return SimdIsa::kAvx2;
    return SimdIsa::kScalar;
  }();
  return best;
}

SimdIsa resolve_simd(SimdMode mode) {
  if (mode == SimdMode::kAuto) return detect_simd_isa();
  const SimdIsa isa = mode == SimdMode::kScalar  ? SimdIsa::kScalar
                      : mode == SimdMode::kAvx2 ? SimdIsa::kAvx2
                                                 : SimdIsa::kAvx512;
  PMPR_CHECK_MSG(simd_isa_supported(isa),
                 "simd mode '" << to_string(mode)
                               << "' forced but this "
                               << (simd_isa_built(isa) ? "host's CPU"
                                                       : "binary")
                               << " does not support it");
  return isa;
}

}  // namespace pmpr
