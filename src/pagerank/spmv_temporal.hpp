// SpMV-style postmortem PageRank kernel (paper §4.1/§4.3): one window of a
// multi-window graph at a time, pulling over the time-filtered reverse
// temporal CSR. The traversal visits every stored event of the part once
// per iteration — Θ(|E_w|) — which is why the multi-window partitioning
// matters (Fig. 8).
#pragma once

#include <span>

#include "graph/multi_window.hpp"
#include "pagerank/batch_csr.hpp"
#include "pagerank/pagerank.hpp"
#include "pagerank/window_state.hpp"

namespace pmpr {

/// Runs PageRank for window [ts, te] of `part`. `x` (size = part locals)
/// holds the initial guess on entry and the result on exit; `scratch`
/// matches x. `state` must have been computed for the same window.
/// Non-null `parallel` runs each sweep as a parallel_for (this is the
/// paper's "application/PR-level" parallelism inside the kernel).
PagerankStats pagerank_window_spmv(const MultiWindowGraph& part, Timestamp ts,
                                   Timestamp te, const WindowState& state,
                                   std::span<double> x,
                                   std::span<double> scratch,
                                   const PagerankParams& params,
                                   const par::ForOptions* parallel = nullptr);

/// Compiled-kernel overload: consumes the per-window compiled adjacency
/// (time filter applied once, active-row and dangling-row compaction)
/// built by compile_window. Bit-identical results, residuals, and
/// iteration counts to the reference overload above.
PagerankStats pagerank_window_spmv(const WindowState& state,
                                   const CompiledWindowCsr& compiled,
                                   std::span<double> x,
                                   std::span<double> scratch,
                                   const PagerankParams& params,
                                   const par::ForOptions* parallel = nullptr);

}  // namespace pmpr
