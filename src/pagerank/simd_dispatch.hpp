// Runtime ISA dispatch for the compiled SpMM sweep kernels.
//
// Three implementations of the inner sweep exist: a scalar ctz-loop
// fallback (always built), an AVX2+FMA kernel, and an AVX-512 kernel. The
// wide kernels are compiled in their own translation units with the
// matching -m flags (see src/CMakeLists.txt) and are only ever *called*
// after the CPU reported support here, so the rest of the library keeps
// the project's baseline architecture flags.
//
// All CPUID probing (__builtin_cpu_supports) lives in simd_dispatch.cpp —
// the pmpr-lint rule `simd-intrinsics-confined` keeps it and the raw
// intrinsics out of the rest of the tree.
#pragma once

#include <string_view>

namespace pmpr {

/// A concrete sweep implementation.
enum class SimdIsa { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// User-facing selection: kAuto picks the best supported ISA; the forced
/// modes are for differential testing and perf triage.
enum class SimdMode { kAuto, kScalar, kAvx2, kAvx512 };

[[nodiscard]] std::string_view to_string(SimdIsa isa);
[[nodiscard]] std::string_view to_string(SimdMode mode);

/// Parses "auto" / "scalar" / "avx2" / "avx512". Throws InvariantError on
/// anything else (CLI validation).
[[nodiscard]] SimdMode parse_simd_mode(std::string_view text);

/// Whether the kernels for `isa` were compiled into this binary (CMake
/// drops the wide TUs when the compiler can't target them).
[[nodiscard]] bool simd_isa_built(SimdIsa isa);

/// Built *and* supported by the CPU we are running on.
[[nodiscard]] bool simd_isa_supported(SimdIsa isa);

/// Best supported ISA of this host (cached after the first probe).
[[nodiscard]] SimdIsa detect_simd_isa();

/// Maps a mode to the ISA to run: kAuto detects; a forced mode throws
/// InvariantError when that ISA is not built or not supported here.
[[nodiscard]] SimdIsa resolve_simd(SimdMode mode);

}  // namespace pmpr
