// Work-stealing thread pool — the pmpr scheduler.
//
// Replaces Intel TBB in this reproduction (see DESIGN.md §2). Provides:
//   * per-worker Chase–Lev deques with random-victim stealing,
//   * an injection queue for tasks submitted from non-pool threads,
//   * blocking waits that *help* (execute queued tasks) instead of idling,
//     which makes nested parallelism (the paper's "nested parallelization")
//     deadlock-free even on a single thread.
//
// Locking protocol (machine-checked via util/thread_annotations.hpp under
// Clang -Wthread-safety):
//   * inject_mutex_ guards injected_ (the external submission queue).
//   * sleep_mutex_ pairs with sleep_cv_ for the park/wake protocol; the
//     epoch/sleeper-count atomics let notify() skip it when nobody sleeps.
//
// Thread count: `ThreadPool::global()` reads the PMPR_THREADS environment
// variable, falling back to std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "obs/scheduler_probe.hpp"
#include "par/ws_deque.hpp"
#include "util/thread_annotations.hpp"

namespace pmpr::par {

/// Completion counter shared by a batch of tasks. `wait()` on the pool
/// blocks (helping) until the count returns to zero.
///
/// If a task throws, the first exception is captured here and rethrown
/// from the `ThreadPool::wait()` call (after all tasks of the group have
/// completed), so parallel loops have the same exception semantics as
/// their sequential counterparts.
class WaitGroup {
 public:
  void add(std::size_t n = 1) {
    // relaxed: add() runs strictly before the submit() that makes the task
    // visible; the deque/injection-queue handoff provides the ordering.
    pending_.fetch_add(n, std::memory_order_relaxed);
  }
  void done() {
    // acq_rel: release publishes the task's side effects (including a
    // captured exception_) to the waiter whose finished() observes 0;
    // acquire orders against other tasks' done() in the same group.
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
  [[nodiscard]] bool finished() const {
    // acquire: pairs with the release half of done() so the waiter sees
    // every completed task's writes once the count reaches zero.
    return pending_.load(std::memory_order_acquire) == 0;
  }

  /// Records the first exception thrown by a task of this group. Returns
  /// true if this call captured it, false if another task got there first
  /// (the caller should log the dropped exception rather than lose it
  /// silently).
  bool capture_exception(std::exception_ptr ep) {
    bool expected = false;
    // acq_rel: only the CAS winner stores exception_; the store is made
    // visible to the waiter by done()'s release, not by this flag (the
    // flag only elects the winner).
    if (has_exception_.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
      exception_ = std::move(ep);
      return true;
    }
    return false;
  }

  /// Rethrows the captured exception, if any. Called by wait() once the
  /// group has drained; safe to call repeatedly (rethrows each time).
  void rethrow_if_failed() {
    // acquire: pairs with the CAS release in capture_exception(); by this
    // point the group has drained, so exception_ is stable.
    if (has_exception_.load(std::memory_order_acquire) && exception_) {
      std::rethrow_exception(exception_);
    }
  }

 private:
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> has_exception_{false};
  std::exception_ptr exception_;
};

/// Implements obs::SchedulerProbe so the sampling profiler can snapshot the
/// pool without obs/ depending back on par/ (the pool depends on obs for
/// counters and trace spans).
class ThreadPool : public obs::SchedulerProbe {
 public:
  /// Creates a pool with `num_threads` workers (>=1). The calling thread is
  /// not a worker but helps while waiting.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, sized from PMPR_THREADS or hardware concurrency.
  static ThreadPool& global();

  /// Total worker threads (parallelism available to parallel_for).
  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

  /// Submits `fn` for asynchronous execution. `wg.add(1)` must have been
  /// called by the submitter beforehand; the pool calls `wg.done()` after
  /// `fn` returns. If called from a worker thread the task goes to that
  /// worker's own deque (LIFO, preserving locality); otherwise it goes to
  /// the injection queue.
  void submit(std::function<void()> fn, WaitGroup& wg);

  /// Blocks until `wg.finished()`, executing queued tasks while waiting.
  /// Rethrows the first exception any task of the group raised.
  void wait(WaitGroup& wg);

  /// Index of the current thread within this pool: [0, num_threads) for
  /// workers, num_threads for the (helping) external thread slot, or -1 if
  /// the thread has never interacted with this pool.
  [[nodiscard]] static int current_worker_index();

  /// Slot index of the current thread for per-thread accumulator arrays of
  /// size num_threads() + 1: a worker of *this* pool gets its worker index;
  /// any other thread — including a worker of a different pool — gets the
  /// spare last slot. During a parallel_for on this pool, loop bodies run
  /// only on this pool's workers plus the single (helping) caller, so slots
  /// are never shared between concurrently-running bodies.
  [[nodiscard]] std::size_t reduce_slot() const;

  // Monitoring introspection (the obs::SchedulerProbe contract, consumed
  // by obs::Sampler). All are safe to call from any thread while the pool
  // runs; values are advisory gauges — in-flight pushes/pops/steals and
  // parks make them racy by contract.

  /// Probe alias for num_threads().
  [[nodiscard]] std::size_t num_workers() const override {
    return num_threads();
  }

  /// Approximate depth of worker `index`'s deque (0 if out of range).
  [[nodiscard]] std::size_t approx_queued(std::size_t index) const override;

  /// Approximate total queued tasks: every worker deque plus the
  /// injection queue.
  [[nodiscard]] std::size_t approx_total_queued() const override
      PMPR_EXCLUDES(inject_mutex_);

  /// Workers currently parked (or committing to park) on the sleep
  /// condvar.
  [[nodiscard]] std::size_t parked_workers() const override {
    // relaxed: an advisory gauge for the sampler; the park protocol itself
    // uses seq_cst on this counter (see notify()), a monitor read needs no
    // ordering with it.
    return num_sleepers_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<void()> fn;
    WaitGroup* wg;
  };

  void worker_loop(std::size_t index);
  /// Attempts to find and run one task. Returns true if a task was run.
  bool try_run_one(std::size_t self_index);
  Task* try_pop_or_steal(std::size_t self_index) PMPR_EXCLUDES(inject_mutex_);
  Task* try_pop_injected() PMPR_EXCLUDES(inject_mutex_);
  void notify() PMPR_EXCLUDES(sleep_mutex_);

  std::vector<std::unique_ptr<WsDeque<Task>>> deques_;
  std::vector<std::thread> workers_;

  /// mutable: const monitoring reads (approx_total_queued) must be able to
  /// take the lock.
  mutable Mutex inject_mutex_;
  std::deque<Task*> injected_ PMPR_GUARDED_BY(inject_mutex_);

  Mutex sleep_mutex_;
  CondVar sleep_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};
  /// Workers currently parked (or committing to park) on sleep_cv_.
  /// notify() skips the mutex + notify entirely while this is zero — the
  /// common case when the pool is saturated — making submit() lock-free on
  /// the signalling side. See notify() for the ordering argument.
  std::atomic<std::uint32_t> num_sleepers_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace pmpr::par
