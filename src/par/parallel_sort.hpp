// Parallel merge sort on the work-stealing pool.
//
// Sorting the event database by time is the postmortem model's single
// upfront pass over all data; for multi-million-event lists a parallel
// sort keeps the representation-build phase proportional to the rest of
// the pipeline. Stable (ties keep input order, matching
// TemporalEdgeList::sort_by_time's contract).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "par/task_group.hpp"

namespace pmpr {

namespace detail {

template <typename T, typename Less>
void merge_sort_rec(T* data, T* buffer, std::size_t lo, std::size_t hi,
                    const Less& less, std::size_t cutoff,
                    par::ThreadPool& pool) {
  const std::size_t n = hi - lo;
  if (n <= cutoff) {
    std::stable_sort(data + lo, data + hi, less);
    return;
  }
  const std::size_t mid = lo + n / 2;
  {
    par::TaskGroup group(&pool);
    group.run([&] { merge_sort_rec(data, buffer, lo, mid, less, cutoff, pool); });
    merge_sort_rec(data, buffer, mid, hi, less, cutoff, pool);
    group.wait();
  }
  // Merge into the buffer, then move back. Stability: on ties take left.
  std::merge(std::make_move_iterator(data + lo),
             std::make_move_iterator(data + mid),
             std::make_move_iterator(data + mid),
             std::make_move_iterator(data + hi), buffer + lo, less);
  std::move(buffer + lo, buffer + hi, data + lo);
}

}  // namespace detail

/// Stable parallel sort of `v` with comparator `less`. `pool` = nullptr
/// uses the global pool. Sequential cutoff defaults to ~16k elements.
template <typename T, typename Less = std::less<T>>
void parallel_sort(std::vector<T>& v, Less less = Less{},
                   par::ThreadPool* pool = nullptr,
                   std::size_t cutoff = 1 << 14) {
  if (v.size() <= cutoff) {
    std::stable_sort(v.begin(), v.end(), less);
    return;
  }
  par::ThreadPool& p = pool != nullptr ? *pool : par::ThreadPool::global();
  std::vector<T> buffer(v.size());
  detail::merge_sort_rec(v.data(), buffer.data(), 0, v.size(), less,
                         std::max<std::size_t>(cutoff, 1), p);
}

}  // namespace pmpr
