// Structured task spawning (analogous to tbb::task_group).
//
// Used where the unit of parallelism is not an index range — e.g. the
// nested postmortem driver spawns one task per multi-window graph, each of
// which runs its own parallel loops.
#pragma once

#include <functional>
#include <utility>

#include "par/thread_pool.hpp"
#include "util/logging.hpp"

namespace pmpr::par {

class TaskGroup {
 public:
  /// Tasks run on `pool` (nullptr = global pool).
  explicit TaskGroup(ThreadPool* pool = nullptr)
      : pool_(pool != nullptr ? *pool : ThreadPool::global()) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Destruction waits for all spawned tasks (structured concurrency).
  /// A task exception surfaces from an explicit wait(); if the group is
  /// destroyed without one, the exception cannot be thrown from a
  /// destructor, so it is logged instead of vanishing.
  ~TaskGroup() {
    try {
      wait();
    } catch (const std::exception& e) {
      PMPR_LOG(kWarn) << "TaskGroup destroyed with unobserved task "
                         "exception: "
                      << e.what();
    } catch (...) {
      PMPR_LOG(kWarn) << "TaskGroup destroyed with unobserved non-std "
                         "task exception";
    }
  }

  template <typename Fn>
  void run(Fn&& fn) {
    wg_.add(1);
    pool_.submit(std::function<void()>(std::forward<Fn>(fn)), wg_);
  }

  /// Blocks until every task spawned so far has finished, helping the pool
  /// while waiting. May be called repeatedly.
  void wait() { pool_.wait(wg_); }

 private:
  ThreadPool& pool_;
  WaitGroup wg_;
};

}  // namespace pmpr::par
