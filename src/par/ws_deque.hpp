// Chase–Lev work-stealing deque.
//
// This is the per-worker task queue of the pmpr scheduler (see
// par/thread_pool.hpp). The owner pushes and pops at the bottom; any other
// thread may steal from the top. The implementation follows the C11 version
// in Lê, Pop, Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing
// for Weak Memory Models" (PPoPP 2013), including its memory-order
// annotations.
//
// The paper this repo reproduces uses Intel TBB's work-stealing scheduler;
// the key property it relies on — threads start with contiguous chunks of
// the iteration space and chunks are only broken up when another thread runs
// dry — is a direct consequence of LIFO owner access + FIFO stealing, which
// this deque provides.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

// ThreadSanitizer does not model std::atomic_thread_fence, so the
// fence-based orderings below (exactly the PPoPP'13 annotations) make TSan
// report false races on the task payload handed from push() to steal().
// Under TSan we strengthen the individual accesses to the fence-free
// sequentially-consistent variant of the algorithm instead; regular builds
// keep the cheaper fence form.
#if defined(__SANITIZE_THREAD__)
#define PMPR_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PMPR_TSAN_BUILD 1
#endif
#endif
#ifndef PMPR_TSAN_BUILD
#define PMPR_TSAN_BUILD 0
#endif

namespace pmpr::par {

inline constexpr bool kTsanBuild = PMPR_TSAN_BUILD != 0;

/// Lock-free single-owner deque of `T*` (T* must be a plain pointer type).
/// Grows geometrically; retired buffers are kept until destruction because
/// concurrent thieves may still hold references into them.
template <typename T>
class WsDeque {
 public:
  explicit WsDeque(std::size_t initial_capacity = 256)
      : buffer_(new Buffer(round_up(initial_capacity))) {}

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  ~WsDeque() {
    // relaxed: destruction is single-threaded; no thief can be live here.
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  /// Owner-only: push a task at the bottom.
  void push(T* task) {
    // relaxed: bottom_ is only written by the owner (this thread).
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // acquire: pairs with the release CAS in steal(), so the owner sees
    // slots freed by completed steals before reusing them.
    std::int64_t t = top_.load(std::memory_order_acquire);
    // relaxed: buffer_ is only replaced by the owner (in grow()).
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, task);
    if constexpr (kTsanBuild) {
      bottom_.store(b + 1, std::memory_order_seq_cst);
    } else {
      // release fence + relaxed store (PPoPP'13 Fig. 1): the fence makes
      // the slot write above visible to any thief whose acquire load of
      // bottom_ observes b + 1.
      std::atomic_thread_fence(std::memory_order_release);
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  }

  /// Owner-only: pop the most recently pushed task, or nullptr if empty.
  T* pop() {
    // relaxed: owner-only variable (see push()).
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // relaxed: owner-only variable (see push()).
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    std::int64_t t;
    if constexpr (kTsanBuild) {
      bottom_.store(b, std::memory_order_seq_cst);
      t = top_.load(std::memory_order_seq_cst);
    } else {
      // relaxed store + seq_cst fence + relaxed load (PPoPP'13): the fence
      // globally orders the bottom_ decrement before the top_ read, which
      // is what prevents owner and thief from both taking the last task.
      bottom_.store(b, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      t = top_.load(std::memory_order_relaxed);
    }
    T* task = nullptr;
    if (t <= b) {
      task = buf->get(b);
      if (t == b) {
        // Last element: race against thieves via CAS on top (seq_cst on
        // success; relaxed on failure since we retake no data after losing).
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          task = nullptr;
        }
        // relaxed: owner-only restore of the canonical empty state.
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      // relaxed: owner-only restore of the canonical empty state.
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread: steal the oldest task, or nullptr if empty / lost a race.
  /// A nullptr return does not guarantee the deque is empty (a concurrent
  /// CAS may have failed); callers treat it as "try elsewhere".
  T* steal() {
    std::int64_t t;
    std::int64_t b;
    if constexpr (kTsanBuild) {
      t = top_.load(std::memory_order_seq_cst);
      b = bottom_.load(std::memory_order_seq_cst);
    } else {
      // acquire top, seq_cst fence, acquire bottom (PPoPP'13): the fence
      // orders this thief's top_ read before the bottom_ read against the
      // owner's pop() fence; the acquire on bottom_ pairs with push()'s
      // release fence so the slot contents read below are initialised.
      t = top_.load(std::memory_order_acquire);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      b = bottom_.load(std::memory_order_acquire);
    }
    T* task = nullptr;
    if (t < b) {
      // acquire: pairs with grow()'s release store so the thief sees a
      // fully-copied replacement buffer.
      Buffer* buf = buffer_.load(std::memory_order_acquire);
      task = buf->get(t);
      // seq_cst on success claims the slot; relaxed on failure — the thief
      // abandons the attempt and reads nothing afterwards.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;
      }
    }
    return task;
  }

  /// Approximate depth, safe to call from any thread (the sampling
  /// profiler reads it from outside the pool); racy by nature.
  [[nodiscard]] std::size_t approx_depth() const {
    // relaxed (both): the result is advisory by contract — a monitor
    // gauge, possibly off by in-flight pushes/pops/steals — and no slot
    // payload is ever read based on these indices, so no acquire pairing
    // is needed.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(cap) {}

    // relaxed (get/put): slot visibility is ordered by the top_/bottom_
    // fences and CASes in push()/pop()/steal(), never by the slot access
    // itself (the slots are atomic only to make the data race defined).
    T* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);  // ordered externally, see above
    }
    void put(std::int64_t i, T* task) {
      slots[static_cast<std::size_t>(i) & mask].store(
          task, std::memory_order_relaxed);  // ordered externally, see above
    }

    std::size_t capacity;
    std::size_t mask;
    std::vector<std::atomic<T*>> slots;
  };

  static std::size_t round_up(std::size_t v) {
    std::size_t p = 16;
    while (p < v) p <<= 1;
    return p;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    retired_.push_back(old);
    // release: publishes the copied slots to thieves that acquire-load
    // buffer_ in steal().
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_;  // owner-only
};

}  // namespace pmpr::par
