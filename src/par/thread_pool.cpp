#include "par/thread_pool.hpp"

#include <chrono>
#include <cstdlib>

#include <string>

#include "obs/counters.hpp"
#include "obs/flightrec.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace pmpr::par {

namespace {

/// Identifies the pool/worker the current thread belongs to, so that
/// submit() can route tasks to the local deque and steals can skip self.
struct TlsWorker {
  ThreadPool* pool = nullptr;
  int index = -1;
};
thread_local TlsWorker tls_worker;

std::size_t env_thread_count() {
  if (const char* env = std::getenv("PMPR_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  deques_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    deques_.push_back(std::make_unique<WsDeque<Task>>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  // release: workers' acquire loads of stop_ must also see everything the
  // destroying thread wrote before shutdown.
  stop_.store(true, std::memory_order_release);
  {
    LockGuard lock(sleep_mutex_);
    sleep_cv_.notify_all();
  }
  for (auto& t : workers_) t.join();
  // Drain any tasks that were never executed (should not happen in correct
  // usage, but avoids leaks if a user abandons a WaitGroup). Workers are
  // joined, but the annotated lock is still taken to satisfy the analysis
  // (and it is uncontended here).
  for (auto& dq : deques_) {
    while (std::unique_ptr<Task> t{dq->pop()}) {
    }
  }
  LockGuard lock(inject_mutex_);
  while (!injected_.empty()) {
    std::unique_ptr<Task> t{injected_.front()};
    injected_.pop_front();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(env_thread_count());
  return pool;
}

int ThreadPool::current_worker_index() {
  return tls_worker.pool != nullptr ? tls_worker.index : -1;
}

std::size_t ThreadPool::reduce_slot() const {
  return tls_worker.pool == this && tls_worker.index >= 0
             ? static_cast<std::size_t>(tls_worker.index)
             : num_threads();
}

std::size_t ThreadPool::approx_queued(std::size_t index) const {
  return index < deques_.size() ? deques_[index]->approx_depth() : 0;
}

std::size_t ThreadPool::approx_total_queued() const {
  std::size_t total = 0;
  for (const auto& dq : deques_) total += dq->approx_depth();
  // The injection queue is mutex-guarded; sampling cadence is milliseconds,
  // so taking the (usually uncontended) lock here is fine.
  LockGuard lock(inject_mutex_);
  return total + injected_.size();
}

void ThreadPool::notify() {
  // Publish the new work, then wake a sleeper only if one exists. Both the
  // epoch bump and the sleeper-count load are seq_cst, as are the worker's
  // sleeper-count increment and epoch re-check in worker_loop(); in the
  // single total order either this bump precedes the worker's re-check
  // (worker sees fresh work and does not sleep) or the worker's increment
  // precedes our load (we see num_sleepers_ > 0 and take the slow path).
  // Either way no wakeup is lost, and the saturated-pool common case skips
  // the mutex entirely.
  work_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (num_sleepers_.load(std::memory_order_seq_cst) == 0) return;
  obs::count(obs::Counter::kUnparks);
  obs::fr_record(obs::FrEvent::kUnpark);
  LockGuard lock(sleep_mutex_);
  sleep_cv_.notify_one();
}

void ThreadPool::submit(std::function<void()> fn, WaitGroup& wg) {
  obs::count(obs::Counter::kTasksSpawned);
  auto task = std::make_unique<Task>(std::move(fn), &wg);
  if (tls_worker.pool == this && tls_worker.index >= 0) {
    deques_[static_cast<std::size_t>(tls_worker.index)]->push(task.release());
  } else {
    LockGuard lock(inject_mutex_);
    injected_.push_back(task.release());
  }
  notify();
}

ThreadPool::Task* ThreadPool::try_pop_injected() {
  LockGuard lock(inject_mutex_);
  if (injected_.empty()) return nullptr;
  Task* t = injected_.front();
  injected_.pop_front();
  return t;
}

ThreadPool::Task* ThreadPool::try_pop_or_steal(std::size_t self_index) {
  // 1. Own deque (workers only; the external helper passes
  //    self_index == num_threads and has no deque).
  if (self_index < deques_.size()) {
    if (Task* t = deques_[self_index]->pop()) return t;
  }
  // 2. Injection queue (cheap check before stealing).
  if (Task* t = try_pop_injected()) return t;
  // 3. Random-victim stealing, two sweeps over the other deques. Attempts
  //    are tallied locally and flushed once per call, not per probe.
  thread_local Xoshiro256 rng(0x7e1d00d5ULL + self_index * 0x9e3779b9ULL);
  const std::size_t n = deques_.size();
  if (n == 0) return nullptr;
  const std::size_t start = rng.bounded(n);
  std::uint64_t attempts = 0;
  for (std::size_t sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t victim = (start + k) % n;
      if (victim == self_index) continue;
      ++attempts;
      if (Task* t = deques_[victim]->steal()) {
        obs::count(obs::Counter::kStealsAttempted, attempts);
        obs::count(obs::Counter::kStealsSucceeded);
        return t;
      }
    }
  }
  if (attempts != 0) obs::count(obs::Counter::kStealsAttempted, attempts);
  return nullptr;
}

bool ThreadPool::try_run_one(std::size_t self_index) {
  std::unique_ptr<Task> task(try_pop_or_steal(self_index));
  if (task == nullptr) return false;
  obs::count(obs::Counter::kTasksExecuted);
  // Failure diagnostics: per-task breadcrumb + liveness beat, so the flight
  // recorder shows scheduler activity and the watchdog sees task churn.
  obs::fr_record(obs::FrEvent::kTaskRun, nullptr, self_index);
  obs::heartbeat("pool.task");
  try {
    task->fn();
  } catch (...) {
    // Leave a last-error breadcrumb before anything else: if this exception
    // later kills the process, the crash report names it.
    try {
      throw;
    } catch (const std::exception& e) {
      obs::fr_record_error(e.what());
    } catch (...) {
      obs::fr_record_error("non-std exception in pool task");
    }
    if (!task->wg->capture_exception(std::current_exception())) {
      // The group already failed with an earlier exception; this one will
      // never be rethrown, so surface it instead of dropping it silently.
      try {
        throw;
      } catch (const std::exception& e) {
        PMPR_LOG(kWarn) << "pool task exception dropped (group already "
                           "failed): "
                        << e.what();
      } catch (...) {
        PMPR_LOG(kWarn) << "pool task exception dropped (group already "
                           "failed): non-std exception";
      }
    }
  }
  task->wg->done();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker.pool = this;
  tls_worker.index = static_cast<int>(index);
  obs::set_thread_name("pool.worker-" + std::to_string(index));
  int idle_spins = 0;
  // acquire: pairs with the destructor's release store so a stopping
  // worker also observes all pre-shutdown writes.
  while (!stop_.load(std::memory_order_acquire)) {
    if (try_run_one(index)) {
      idle_spins = 0;
      continue;
    }
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    // Sleep until new work is submitted. The sleeper count must rise
    // before the epoch re-check (both seq_cst, pairing with notify()) so a
    // submitter either bumps the epoch in time for the re-check to see it
    // or observes num_sleepers_ > 0 and notifies under the mutex; the
    // timeout is a belt-and-braces fallback against missed steals.
    //
    // acquire on the pre-lock epoch read: a stale `seen` is harmless (the
    // seq_cst re-check below decides), acquire merely keeps it ordered
    // before the lock.
    const std::uint64_t seen = work_epoch_.load(std::memory_order_acquire);
    LockGuard lock(sleep_mutex_);
    // acquire: pairs with the destructor's release store of stop_.
    if (stop_.load(std::memory_order_acquire)) break;
    num_sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (work_epoch_.load(std::memory_order_seq_cst) == seen) {
      obs::count(obs::Counter::kParks);
      obs::fr_record(obs::FrEvent::kPark, nullptr, index);
      // Retire the heartbeat slot: a parked worker is idle, not stalled.
      obs::heartbeat_idle();
      sleep_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    num_sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    idle_spins = 0;
  }
  tls_worker.pool = nullptr;
  tls_worker.index = -1;
}

void ThreadPool::wait(WaitGroup& wg) {
  // Workers help from their own deque slot; external threads help via the
  // virtual slot num_threads (steal-only).
  const std::size_t self =
      (tls_worker.pool == this && tls_worker.index >= 0)
          ? static_cast<std::size_t>(tls_worker.index)
          : deques_.size();
  while (!wg.finished()) {
    if (!try_run_one(self)) {
      // Waiting with nothing to run is idleness, not a stall.
      obs::heartbeat_idle();
      std::this_thread::yield();
    }
  }
  wg.rethrow_if_failed();
}

}  // namespace pmpr::par
