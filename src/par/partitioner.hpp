// Partitioner policies mirroring the three Intel TBB partitioners evaluated
// in the paper (Fig. 7): auto_partitioner, simple_partitioner and
// static_partitioner, plus the grain-size knob.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>

namespace pmpr::par {

enum class Partitioner {
  /// Splits until chunks reach max(grain, range / (8 * threads)). Adaptive
  /// enough for most workloads; the paper's recommended default.
  kAuto,
  /// Splits all the way down to `grain` exactly. Small grains expose maximum
  /// parallelism at maximum scheduling overhead.
  kSimple,
  /// Divides the range into at most `threads` equal contiguous chunks
  /// (never smaller than `grain`); no adaptive re-splitting, so skewed work
  /// distributions lead to load imbalance — the effect the paper observes.
  kStatic,
};

[[nodiscard]] constexpr std::string_view to_string(Partitioner p) {
  switch (p) {
    case Partitioner::kAuto:
      return "auto";
    case Partitioner::kSimple:
      return "simple";
    case Partitioner::kStatic:
      return "static";
  }
  return "?";
}

/// Parses "auto" / "simple" / "static"; defaults to kAuto.
[[nodiscard]] inline Partitioner parse_partitioner(std::string_view name) {
  if (name == "simple") return Partitioner::kSimple;
  if (name == "static") return Partitioner::kStatic;
  return Partitioner::kAuto;
}

/// The chunk size a partitioner actually splits down to, for a range of `n`
/// items on `threads` workers with requested grain `grain`.
[[nodiscard]] inline std::size_t effective_grain(Partitioner p, std::size_t n,
                                                 std::size_t grain,
                                                 std::size_t threads) {
  grain = std::max<std::size_t>(grain, 1);
  threads = std::max<std::size_t>(threads, 1);
  switch (p) {
    case Partitioner::kSimple:
      return grain;
    case Partitioner::kAuto: {
      const std::size_t adaptive = (n + 8 * threads - 1) / (8 * threads);
      return std::max(grain, std::max<std::size_t>(adaptive, 1));
    }
    case Partitioner::kStatic: {
      const std::size_t per_thread = (n + threads - 1) / threads;
      return std::max(grain, std::max<std::size_t>(per_thread, 1));
    }
  }
  return grain;
}

}  // namespace pmpr::par
