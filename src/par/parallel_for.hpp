// parallel_for / parallel_reduce over index ranges, built on the
// work-stealing ThreadPool.
//
// The range form `parallel_for_range` hands each leaf a contiguous
// [lo, hi) chunk that is guaranteed to execute sequentially on one thread.
// The postmortem runner uses this to chain partial initialization across
// consecutive windows inside a chunk (paper §4.3.1: "if the same thread
// processes G_{i-1} and G_i, then partial initialization occurs").
#pragma once

#include <cstddef>
#include <utility>

#include "par/partitioner.hpp"
#include "par/thread_pool.hpp"
#include "util/thread_annotations.hpp"

namespace pmpr::par {

/// Execution options for parallel loops.
struct ForOptions {
  Partitioner partitioner = Partitioner::kAuto;
  std::size_t grain = 1;
  /// Pool to run on; nullptr selects ThreadPool::global().
  ThreadPool* pool = nullptr;
};

namespace detail {

/// Recursive binary splitting: peel off the right half as a stealable task,
/// keep the left half hot on the current thread (mirrors TBB's range
/// splitting, preserving left-to-right order on the owning thread).
template <typename Body>
void run_split(ThreadPool& pool, WaitGroup& wg, std::size_t lo, std::size_t hi,
               std::size_t grain, const Body& body) {
  while (hi - lo > grain) {
    const std::size_t mid = lo + (hi - lo) / 2;
    wg.add(1);
    pool.submit(
        [&pool, &wg, mid, hi, grain, &body] {
          run_split(pool, wg, mid, hi, grain, body);
        },
        wg);
    hi = mid;
  }
  body(lo, hi);
}

}  // namespace detail

/// Runs `body(lo, hi)` over disjoint chunks covering [begin, end).
/// Blocks until all chunks complete. Safe to nest.
template <typename Body>
void parallel_for_range(std::size_t begin, std::size_t end,
                        const ForOptions& opts, Body&& body) {
  if (begin >= end) return;
  ThreadPool& pool = opts.pool != nullptr ? *opts.pool : ThreadPool::global();
  const std::size_t n = end - begin;
  const std::size_t grain =
      effective_grain(opts.partitioner, n, opts.grain, pool.num_threads());
  if (n <= grain || pool.num_threads() == 1) {
    // Fast path: no profitable parallelism. (A 1-thread pool still runs
    // correctly through the task path; we just skip the overhead.)
    body(begin, end);
    return;
  }
  WaitGroup wg;
  wg.add(1);
  pool.submit(
      [&pool, &wg, begin, end, grain, &body] {
        detail::run_split(pool, wg, begin, end, grain, body);
      },
      wg);
  pool.wait(wg);
}

/// Runs `body(i)` for each i in [begin, end).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const ForOptions& opts,
                  Body&& body) {
  parallel_for_range(begin, end, opts, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

/// Parallel reduction: `map(lo, hi)` produces a partial result per chunk,
/// `combine(acc, partial)` folds it into the accumulator. `combine` runs
/// under a lock, so it should be cheap relative to `map`.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity,
                  const ForOptions& opts, Map&& map, Combine&& combine) {
  T acc = std::move(identity);
  Mutex acc_mutex;
  parallel_for_range(begin, end, opts,
                     [&](std::size_t lo, std::size_t hi) {
                       T partial = map(lo, hi);
                       LockGuard lock(acc_mutex);
                       acc = combine(std::move(acc), std::move(partial));
                     });
  return acc;
}

/// Lock-free parallel reduction for copyable array/struct accumulators
/// (doubles, std::array<double, N>, small structs): each thread folds its
/// chunks' partials into a cache-line-padded per-thread slot (one per
/// worker plus one for the helping caller — see ThreadPool::reduce_slot),
/// and the touched slots are combined with `identity` on the calling
/// thread at the end. Like parallel_reduce, `identity` enters the result
/// exactly once (an empty range returns it unchanged). The combine order
/// is unspecified, so floating-point results may differ between runs at
/// rounding precision.
template <typename T, typename Map, typename Combine>
T parallel_reduce_slots(std::size_t begin, std::size_t end, T identity,
                        const ForOptions& opts, Map&& map, Combine&& combine) {
  ThreadPool& pool = opts.pool != nullptr ? *opts.pool : ThreadPool::global();
  struct alignas(64) Slot {
    T value;
    bool used = false;
  };
  std::vector<Slot> slots(pool.num_threads() + 1);
  parallel_for_range(begin, end, opts, [&](std::size_t lo, std::size_t hi) {
    // Only the owning thread touches its slot, so no lock is needed; a
    // nested steal that re-enters on the same thread runs combine
    // sequentially between, not during, the outer body's calls.
    Slot& slot = slots[pool.reduce_slot()];
    slot.value =
        slot.used ? combine(std::move(slot.value), map(lo, hi)) : map(lo, hi);
    slot.used = true;
  });
  T acc = std::move(identity);
  for (Slot& s : slots) {
    if (s.used) acc = combine(std::move(acc), std::move(s.value));
  }
  return acc;
}

}  // namespace pmpr::par
