// Umbrella header for the pmpr library — postmortem computation of PageRank
// on temporal graphs (reproduction of Hossain & Saule, ICPP 2022).
//
// Typical use:
//
//   #include "pmpr.hpp"
//
//   pmpr::TemporalEdgeList events = pmpr::TemporalEdgeList::load_text(path);
//   events.sort_by_time();
//   auto spec = pmpr::WindowSpec::cover(events.min_time(), events.max_time(),
//                                       /*delta=*/90 * pmpr::duration::kDay,
//                                       /*sw=*/pmpr::duration::kDay);
//   pmpr::StoreAllSink sink(spec.count);
//   pmpr::PostmortemConfig cfg;  // or pmpr::suggest_config(...)
//   pmpr::RunResult r = pmpr::run_postmortem(events, spec, sink, cfg);
#pragma once

#include "analysis/betweenness.hpp"  // IWYU pragma: export
#include "analysis/closeness.hpp"    // IWYU pragma: export
#include "analysis/connected_components.hpp"  // IWYU pragma: export
#include "analysis/degree_distribution.hpp"   // IWYU pragma: export
#include "analysis/katz.hpp"        // IWYU pragma: export
#include "analysis/kcore.hpp"       // IWYU pragma: export
#include "analysis/timeseries.hpp"  // IWYU pragma: export
#include "exec/config.hpp"          // IWYU pragma: export
#include "exec/export.hpp"          // IWYU pragma: export
#include "exec/metrics.hpp"         // IWYU pragma: export
#include "exec/offline_runner.hpp"  // IWYU pragma: export
#include "exec/postmortem_runner.hpp"  // IWYU pragma: export
#include "exec/results.hpp"            // IWYU pragma: export
#include "exec/streaming_runner.hpp"   // IWYU pragma: export
#include "gen/surrogates.hpp"          // IWYU pragma: export
#include "graph/csr.hpp"               // IWYU pragma: export
#include "graph/edge_list.hpp"         // IWYU pragma: export
#include "graph/multi_window.hpp"      // IWYU pragma: export
#include "graph/paged_multi_window.hpp"  // IWYU pragma: export
#include "graph/temporal_csr.hpp"      // IWYU pragma: export
#include "graph/types.hpp"             // IWYU pragma: export
#include "graph/window.hpp"            // IWYU pragma: export
#include "io/compressed_csr.hpp"       // IWYU pragma: export
#include "io/mmap_file.hpp"            // IWYU pragma: export
#include "obs/counters.hpp"            // IWYU pragma: export
#include "obs/crash.hpp"               // IWYU pragma: export
#include "obs/flightrec.hpp"           // IWYU pragma: export
#include "obs/histogram.hpp"           // IWYU pragma: export
#include "obs/memory.hpp"              // IWYU pragma: export
#include "obs/sampler.hpp"             // IWYU pragma: export
#include "obs/trace.hpp"               // IWYU pragma: export
#include "obs/watchdog.hpp"            // IWYU pragma: export
#include "pagerank/pagerank.hpp"       // IWYU pragma: export
#include "par/parallel_for.hpp"        // IWYU pragma: export
#include "par/task_group.hpp"          // IWYU pragma: export
#include "util/options.hpp"            // IWYU pragma: export
#include "util/stats.hpp"              // IWYU pragma: export
#include "util/table.hpp"              // IWYU pragma: export
#include "util/timer.hpp"              // IWYU pragma: export
