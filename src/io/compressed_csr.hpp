// Chunked delta+varint compression of the temporal CSR adjacency — the
// storage format behind compressed in-RAM parts and the mmap-backed
// out-of-core multi-window store (graph/paged_multi_window.hpp).
//
// Rows are grouped into *chunks* of roughly target_chunk_entries adjacency
// entries (whole rows, never split). Each chunk records its entry-count /
// row-range extents plus the min/max timestamp of its entries, so a
// window-compile pass can skip chunks whose time range misses the window
// entirely (batch_csr.cpp's pruning). Within a chunk, rows are encoded
// back-to-back:
//
//   varint(entry_count)
//   per entry, interleaved:
//     column:    varint(first col), then zigzag varints of wrapping
//                32-bit deltas (rows sorted by ⟨neighbor, time⟩ make the
//                deltas small and non-negative; the zigzag keeps
//                adversarial unsorted input exact)
//     timestamp: zigzag varint of the wrapping delta vs. the chunk's
//                time_min for the row's first event, then vs. the previous
//                event — exact for the full int64 range (io/varint.hpp).
//
// Chunks are sequentially decodable only (no random access within), so
// consumers parallelize over chunks, each decoding into a reusable
// DecodeScratch.
//
// The on-disk form is a versioned little-header + chunk table + payload;
// map()/map_at() create zero-copy views over an MmapFile so the paged
// store can evict a part's payload with one madvise(DONTNEED).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "io/mmap_file.hpp"
#include "obs/memory.hpp"

namespace pmpr::io {

// Scalar aliases local to the io layer: io sits *below* graph in the layer
// DAG (ci/layers.toml) so it cannot include graph/types.hpp. The widths
// match VertexId / Timestamp; the bridge in graph/temporal_csr.cpp
// static_asserts the equivalence.
using ColId = std::uint32_t;
using TimeValue = std::int64_t;

/// Default chunk granularity: big enough to amortize per-chunk metadata
/// and parallel-for overhead, small enough that window pruning has
/// resolution (≈48 KiB of raw adjacency per chunk).
inline constexpr std::size_t kDefaultChunkEntries = 4096;

struct ChunkMeta {
  std::uint64_t byte_offset = 0;  ///< Into the payload stream.
  std::uint64_t byte_size = 0;
  std::uint64_t first_row = 0;
  std::uint64_t num_rows = 0;
  std::uint64_t first_entry = 0;
  std::uint64_t num_entries = 0;
  TimeValue time_min = 0;  ///< Over the chunk's entries; 0 when empty.
  TimeValue time_max = 0;
};

/// Reusable decode target: one chunk's rows as plain arrays. row_ptr has
/// num_rows + 1 offsets into cols/times (chunk-local, starting at 0).
struct DecodeScratch {
  std::vector<ColId> cols;
  std::vector<TimeValue> times;
  std::vector<std::size_t> row_ptr;
  /// Tagged accounting of the buffers' capacity (MemTag::kDecodeScratch),
  /// refreshed by decode_chunk/decode_all via recharge().
  obs::MemCharge charge;

  /// Re-charges the current capacity. Cheap when nothing grew (one
  /// comparison) — callable per decode without breaking cost discipline.
  void recharge() {
    const std::size_t bytes = cols.capacity() * sizeof(ColId) +
                              times.capacity() * sizeof(TimeValue) +
                              row_ptr.capacity() * sizeof(std::size_t);
    if (bytes != charge.bytes()) {
      charge.reset(obs::MemTag::kDecodeScratch, bytes);
    }
  }
};

class CompressedTemporalCsr {
 public:
  CompressedTemporalCsr() = default;

  /// Encodes plain CSR arrays (row_ptr.size() == rows + 1, cols/times
  /// parallel). Accepts arbitrary values — the codec round-trips
  /// non-monotone times and unsorted columns bit-exactly; only the
  /// structural shape (monotone row_ptr bounded by the entry count) is
  /// checked. The result owns its payload in RAM.
  static CompressedTemporalCsr encode(
      std::span<const std::size_t> row_ptr, std::span<const ColId> cols,
      std::span<const TimeValue> times,
      std::size_t target_chunk_entries = kDefaultChunkEntries);

  [[nodiscard]] std::size_t num_rows() const { return num_rows_; }
  [[nodiscard]] std::size_t num_entries() const { return num_entries_; }
  [[nodiscard]] std::size_t num_chunks() const { return chunks_.size(); }
  [[nodiscard]] const ChunkMeta& chunk(std::size_t c) const {
    return chunks_[c];
  }

  /// Decodes chunk `c` into `scratch` (overwritten, capacity reused).
  /// Throws pmpr::InvariantError when the payload is corrupt (counts
  /// disagree with the chunk table, truncated varints).
  void decode_chunk(std::size_t c, DecodeScratch& scratch) const;

  /// Decodes the whole CSR into `scratch` (row_ptr spans all rows).
  void decode_all(DecodeScratch& scratch) const;

  /// Encoded payload bytes (the compressed col+time stream).
  [[nodiscard]] std::size_t encoded_bytes() const { return payload().size(); }
  /// What the raw TemporalCsr this stream replaces occupies: the
  /// row_ptr_[] array plus the parallel col_[] + time_[] arrays (row
  /// lengths live inside the stream, so the encoded form stands in for
  /// all three) — the compression-ratio denominator against
  /// memory_bytes().
  [[nodiscard]] std::size_t raw_adjacency_bytes() const {
    const std::size_t row_ptr_words = num_rows_ == 0 ? 0 : num_rows_ + 1;
    return row_ptr_words * sizeof(std::size_t) +
           num_entries_ * (sizeof(ColId) + sizeof(TimeValue));
  }
  /// Bytes this object keeps addressable: chunk table plus the payload
  /// (owned or mapped — mapped pages count because decoding touches them;
  /// the paged store reclaims them via advise(kDontNeed)).
  [[nodiscard]] std::size_t memory_bytes() const {
    return chunks_.size() * sizeof(ChunkMeta) + payload().size();
  }
  /// True for map()/map_at() views (payload lives in the mapped file).
  [[nodiscard]] bool is_mapped_view() const { return file_ != nullptr; }

  // --- on-disk form ------------------------------------------------------

  /// Appends the serialized form (header + chunk table + payload) to
  /// `out`. save() writes exactly these bytes.
  void serialize_to(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] std::size_t serialized_bytes() const;

  void save(const std::string& path) const;
  /// Parses a serialized blob into an owning (RAM) instance.
  static CompressedTemporalCsr load(const std::string& path);
  /// Zero-copy view over a whole mapped file.
  static CompressedTemporalCsr map(std::shared_ptr<MmapFile> file) {
    const std::size_t size = file->bytes().size();
    return map_at(std::move(file), 0, size);
  }
  /// Zero-copy view over [offset, offset + size) of `file` — the paged
  /// store packs one serialized part per section of a single store file.
  /// The header and chunk table are validated and copied to RAM; the
  /// payload stays in the mapping.
  static CompressedTemporalCsr map_at(std::shared_ptr<MmapFile> file,
                                      std::size_t offset, std::size_t size);

  /// Applies a paging hint to the payload's byte range (no-op for owning
  /// instances and unmapped fallbacks).
  void advise(Advice advice) const;

  /// Appends raw bytes to a binary stream. Lives here so the byte-level
  /// reinterpret_cast stays inside src/io/ (lint rule
  /// reinterpret-cast-outside-io); the paged store streams serialized
  /// parts through it.
  static void write_bytes(std::ostream& out,
                          std::span<const std::uint8_t> bytes);

 private:
  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return file_ != nullptr ? view_
                            : std::span<const std::uint8_t>(owned_payload_);
  }
  static CompressedTemporalCsr parse(std::span<const std::uint8_t> bytes,
                                     std::shared_ptr<MmapFile> file,
                                     std::size_t file_offset,
                                     const std::string& origin);
  void validate_chunk_table(const std::string& origin) const;

  std::size_t num_rows_ = 0;
  std::size_t num_entries_ = 0;
  std::vector<ChunkMeta> chunks_;
  std::vector<std::uint8_t> owned_payload_;
  // Mapped-view state: view_ spans the payload inside *file_;
  // payload_file_offset_ feeds advise().
  std::span<const std::uint8_t> view_;
  std::shared_ptr<MmapFile> file_;
  std::size_t payload_file_offset_ = 0;
};

}  // namespace pmpr::io
