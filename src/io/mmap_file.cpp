#include "io/mmap_file.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PMPR_IO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PMPR_IO_HAVE_MMAP 0
#endif

namespace pmpr::io {

namespace {

#if PMPR_IO_HAVE_MMAP
std::size_t page_size() {
  const long ps = ::sysconf(_SC_PAGESIZE);
  return ps > 0 ? static_cast<std::size_t>(ps) : 4096;
}

#if defined(__APPLE__)
using MincoreVec = char;  // macOS declares mincore(2) with a char vector.
#else
using MincoreVec = unsigned char;
#endif

int native_advice(Advice a) {
  switch (a) {
    case Advice::kSequential:
      return MADV_SEQUENTIAL;
    case Advice::kWillNeed:
      return MADV_WILLNEED;
    case Advice::kDontNeed:
      return MADV_DONTNEED;
    case Advice::kNormal:
      break;
  }
  return MADV_NORMAL;
}
#endif

void read_whole_file(const std::string& path,
                     std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  PMPR_CHECK_MSG(static_cast<bool>(in), "cannot open " << path);
  const std::streamoff size = in.tellg();
  PMPR_CHECK_MSG(size >= 0, "cannot stat " << path);
  out.resize(static_cast<std::size_t>(size));
  in.seekg(0);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(out.data()), size);
    PMPR_CHECK_MSG(static_cast<bool>(in), "short read on " << path);
  }
}

}  // namespace

MmapFile::~MmapFile() {
#if PMPR_IO_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  if (!mapped_) data_ = fallback_.data();
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
#if PMPR_IO_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  fallback_ = std::move(other.fallback_);
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  if (!mapped_) data_ = fallback_.data();
  return *this;
}

MmapFile MmapFile::open(const std::string& path) {
  MmapFile f;
#if PMPR_IO_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  PMPR_CHECK_MSG(fd >= 0,
                 "cannot open " << path << ": " << std::strerror(errno));
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    PMPR_CHECK_MSG(false,
                   "cannot stat " << path << ": " << std::strerror(err));
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return f;  // empty span; nothing to map
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (addr != MAP_FAILED) {
    f.data_ = static_cast<const std::uint8_t*>(addr);
    f.size_ = size;
    f.mapped_ = true;
    return f;
  }
#endif
  read_whole_file(path, f.fallback_);
  f.data_ = f.fallback_.data();
  f.size_ = f.fallback_.size();
  f.mapped_ = false;
  return f;
}

void MmapFile::advise([[maybe_unused]] std::size_t offset,
                      [[maybe_unused]] std::size_t length,
                      [[maybe_unused]] Advice advice) const {
#if PMPR_IO_HAVE_MMAP
  if (!mapped_ || data_ == nullptr || offset >= size_) return;
  length = std::min(length, size_ - offset);
  // madvise wants a page-aligned start; align down and widen the length so
  // the requested range stays covered.
  const std::size_t ps = page_size();
  const std::size_t misalign = offset % ps;
  offset -= misalign;
  length += misalign;
  length = std::min(length, size_ - offset);
  // Advisory: a failure (e.g. an unsupported advice value) degrades paging
  // behavior, never correctness, so the return value is ignored.
  (void)::madvise(const_cast<std::uint8_t*>(data_) + offset, length,
                  native_advice(advice));
#endif
}

std::size_t MmapFile::resident_bytes(std::size_t offset,
                                     std::size_t length) const {
  if (data_ == nullptr || offset >= size_) return 0;
  length = std::min(length, size_ - offset);
  if (length == 0) return 0;
  // The read-into-RAM fallback IS anonymous resident memory: report it all.
  if (!mapped_) return length;
#if PMPR_IO_HAVE_MMAP
  // mincore wants a page-aligned start; align down and widen like advise().
  const std::size_t ps = page_size();
  const std::size_t misalign = offset % ps;
  offset -= misalign;
  length += misalign;
  length = std::min(length, size_ - offset);
  const std::size_t pages = (length + ps - 1) / ps;
  std::vector<MincoreVec> vec(pages);
  // Advisory measurement: a failed scan reports 0 rather than guessing.
  if (::mincore(const_cast<std::uint8_t*>(data_) + offset, length,
                vec.data()) != 0) {
    return 0;
  }
  std::size_t resident_pages = 0;
  for (const MincoreVec b : vec) {
    resident_pages += static_cast<unsigned char>(b) & 1u;
  }
  return std::min(resident_pages * ps, length);
#else
  return 0;
#endif
}

}  // namespace pmpr::io
