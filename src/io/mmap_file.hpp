// Read-only memory-mapped files with explicit access-pattern hints — the
// storage substrate of the out-of-core multi-window store
// (graph/paged_multi_window.hpp).
//
// On POSIX this is open + mmap + madvise; the paged store's eviction is
// advise(kDontNeed), which drops the clean file-backed pages and shrinks
// RSS without invalidating the mapping (the next touch refaults from
// disk). On platforms without mmap — or when the map call fails — the
// whole file is read into an anonymous buffer and advise() becomes a
// no-op: same bytes, no paging control.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pmpr::io {

/// Paging hint forwarded to madvise(2) where available.
enum class Advice {
  kNormal,      ///< MADV_NORMAL: default kernel readahead.
  kSequential,  ///< MADV_SEQUENTIAL: aggressive readahead, early reclaim.
  kWillNeed,    ///< MADV_WILLNEED: prefetch the range now.
  kDontNeed,    ///< MADV_DONTNEED: drop the pages (refault on next touch).
};

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. Throws pmpr::InvariantError when the file
  /// cannot be opened or statted. An empty file yields an empty span.
  static MmapFile open(const std::string& path);

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {data_, size_};
  }
  /// False when the read-into-RAM fallback is active (advise is a no-op
  /// and eviction cannot reclaim anything).
  [[nodiscard]] bool is_mapped() const { return mapped_; }

  /// Hints the kernel about [offset, offset + length). The offset is
  /// aligned down to a page boundary internally; out-of-range lengths are
  /// clamped. Advisory only: failures are ignored (the data stays
  /// correct, the paging behavior merely degrades).
  void advise(std::size_t offset, std::size_t length, Advice advice) const;

  /// Bytes of [offset, offset + length) currently resident in physical
  /// memory, measured with an mincore(2) page scan — the ground truth the
  /// paged store's charged residency is audited against. The fallback
  /// buffer counts as fully resident (it IS the anonymous memory). Returns
  /// 0 when the range is empty or the scan fails.
  [[nodiscard]] std::size_t resident_bytes(std::size_t offset,
                                           std::size_t length) const;

  /// Residency of the whole mapping.
  [[nodiscard]] std::size_t resident_bytes() const {
    return resident_bytes(0, size_);
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> fallback_;
};

}  // namespace pmpr::io
