#include "io/compressed_csr.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "io/varint.hpp"
#include "util/check.hpp"

namespace pmpr::io {

namespace {

// On-disk layout (all fields native-endian; the endianness marker rejects
// foreign-endian files at load):
//   8   magic "PMPRCC01"
//   2   endianness marker 0x0102 (reads back 0x0201 on the wrong end)
//   1   codec tag (kCodecDeltaVarint)
//   5   reserved (zero)
//   8   num_rows
//   8   num_entries
//   8   num_chunks
//   8   payload_bytes
//   num_chunks * 64   chunk table (8 fields of 8 bytes, ChunkMeta order)
//   payload_bytes     encoded chunk payloads, back-to-back
constexpr char kMagic[8] = {'P', 'M', 'P', 'R', 'C', 'C', '0', '1'};
constexpr std::uint16_t kEndianMarker = 0x0102;
constexpr std::uint8_t kCodecDeltaVarint = 1;
constexpr std::size_t kHeaderBytes = 48;
constexpr std::size_t kChunkRecordBytes = 64;

template <typename T>
T read_pod(std::span<const std::uint8_t> bytes, std::size_t pos) {
  T v;
  std::memcpy(&v, bytes.data() + pos, sizeof(T));
  return v;
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

}  // namespace

CompressedTemporalCsr CompressedTemporalCsr::encode(
    std::span<const std::size_t> row_ptr, std::span<const ColId> cols,
    std::span<const TimeValue> times, std::size_t target_chunk_entries) {
  CompressedTemporalCsr out;
  PMPR_CHECK_MSG(cols.size() == times.size(),
                 "col/time arrays disagree: " << cols.size() << " vs "
                                              << times.size());
  const std::size_t num_rows = row_ptr.empty() ? 0 : row_ptr.size() - 1;
  if (num_rows == 0) {
    PMPR_CHECK_MSG(cols.empty(),
                   "rowless CSR carries " << cols.size() << " entries");
    return out;
  }
  PMPR_CHECK_MSG(row_ptr.front() == 0 && row_ptr.back() == cols.size(),
                 "row_ptr ends [" << row_ptr.front() << ", "
                                  << row_ptr.back()
                                  << "] do not bracket the " << cols.size()
                                  << " entries");
  for (std::size_t v = 0; v < num_rows; ++v) {
    PMPR_CHECK_MSG(row_ptr[v] <= row_ptr[v + 1],
                   "row_ptr not monotone at row " << v);
  }
  out.num_rows_ = num_rows;
  out.num_entries_ = cols.size();

  const std::size_t target = std::max<std::size_t>(1, target_chunk_entries);
  std::vector<std::uint8_t> buf;
  buf.reserve(cols.size() * 2 + num_rows);

  std::size_t r = 0;
  while (r < num_rows) {
    ChunkMeta m;
    m.first_row = r;
    m.first_entry = row_ptr[r];
    m.byte_offset = buf.size();
    // Whole rows until the chunk holds >= target entries (a single long
    // row may exceed it alone; trailing empty rows join the last chunk).
    std::size_t end = r;
    do {
      ++end;
    } while (end < num_rows && row_ptr[end] - row_ptr[r] < target);
    m.num_rows = end - r;
    m.num_entries = row_ptr[end] - row_ptr[r];

    if (m.num_entries > 0) {
      TimeValue tmin = std::numeric_limits<TimeValue>::max();
      TimeValue tmax = std::numeric_limits<TimeValue>::min();
      for (std::size_t i = row_ptr[r]; i < row_ptr[end]; ++i) {
        tmin = std::min(tmin, times[i]);
        tmax = std::max(tmax, times[i]);
      }
      m.time_min = tmin;
      m.time_max = tmax;
    }
    const TimeValue base = m.num_entries > 0 ? m.time_min : 0;

    for (std::size_t v = r; v < end; ++v) {
      const std::size_t lo = row_ptr[v];
      const std::size_t hi = row_ptr[v + 1];
      append_varint(buf, hi - lo);
      ColId prev_col = 0;
      TimeValue prev_t = base;
      for (std::size_t i = lo; i < hi; ++i) {
        if (i == lo) {
          append_varint(buf, cols[i]);
        } else {
          append_delta32(buf, cols[i], prev_col);
        }
        append_delta(buf, times[i], prev_t);
        prev_col = cols[i];
        prev_t = times[i];
      }
    }
    m.byte_size = buf.size() - m.byte_offset;
    out.chunks_.push_back(m);
    r = end;
  }
  out.owned_payload_ = std::move(buf);
  return out;
}

void CompressedTemporalCsr::decode_chunk(std::size_t c,
                                         DecodeScratch& scratch) const {
  PMPR_CHECK_MSG(c < chunks_.size(),
                 "chunk index " << c << " out of " << chunks_.size());
  const ChunkMeta& m = chunks_[c];
  const std::span<const std::uint8_t> pl = payload();
  PMPR_CHECK_MSG(m.byte_offset + m.byte_size <= pl.size(),
                 "chunk " << c << " byte range exceeds the payload");
  const std::uint8_t* p = pl.data() + m.byte_offset;
  const std::uint8_t* end = p + m.byte_size;

  scratch.row_ptr.resize(m.num_rows + 1);
  scratch.row_ptr[0] = 0;
  scratch.cols.resize(m.num_entries);
  scratch.times.resize(m.num_entries);
  const TimeValue base = m.num_entries > 0 ? m.time_min : 0;

  std::size_t at = 0;
  for (std::size_t i = 0; i < m.num_rows; ++i) {
    std::uint64_t cnt = 0;
    p = decode_varint(p, end, cnt);
    PMPR_CHECK_MSG(cnt <= m.num_entries - at,
                   "chunk " << c << " row " << i
                            << " entry count overruns the chunk total "
                               "(corrupt payload)");
    ColId prev_col = 0;
    TimeValue prev_t = base;
    for (std::uint64_t e = 0; e < cnt; ++e) {
      ColId col = 0;
      if (e == 0) {
        std::uint64_t u = 0;
        p = decode_varint(p, end, u);
        PMPR_CHECK_MSG(u <= std::numeric_limits<ColId>::max(),
                       "chunk " << c << " first column " << u
                                << " exceeds 32 bits (corrupt payload)");
        col = static_cast<ColId>(u);
      } else {
        p = decode_delta32(p, end, prev_col, col);
      }
      TimeValue t = 0;
      p = decode_delta(p, end, prev_t, t);
      scratch.cols[at] = col;
      scratch.times[at] = t;
      ++at;
      prev_col = col;
      prev_t = t;
    }
    scratch.row_ptr[i + 1] = at;
  }
  PMPR_CHECK_MSG(at == m.num_entries,
                 "chunk " << c << " decoded " << at << " entries, table says "
                          << m.num_entries);
  PMPR_CHECK_MSG(p == end,
                 "chunk " << c << " payload has trailing bytes");
  scratch.recharge();
}

void CompressedTemporalCsr::decode_all(DecodeScratch& scratch) const {
  scratch.cols.resize(num_entries_);
  scratch.times.resize(num_entries_);
  scratch.row_ptr.assign(num_rows_ + 1, 0);
  DecodeScratch tmp;
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    decode_chunk(c, tmp);
    const ChunkMeta& m = chunks_[c];
    std::copy(tmp.cols.begin(), tmp.cols.end(),
              scratch.cols.begin() + static_cast<std::ptrdiff_t>(m.first_entry));
    std::copy(tmp.times.begin(), tmp.times.end(),
              scratch.times.begin() +
                  static_cast<std::ptrdiff_t>(m.first_entry));
    for (std::size_t i = 0; i < m.num_rows; ++i) {
      scratch.row_ptr[m.first_row + i + 1] = m.first_entry + tmp.row_ptr[i + 1];
    }
  }
  scratch.recharge();
}

void CompressedTemporalCsr::serialize_to(std::vector<std::uint8_t>& out) const {
  out.reserve(out.size() + serialized_bytes());
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  append_pod(out, kEndianMarker);
  append_pod(out, kCodecDeltaVarint);
  for (int i = 0; i < 5; ++i) append_pod<std::uint8_t>(out, 0);
  append_pod<std::uint64_t>(out, num_rows_);
  append_pod<std::uint64_t>(out, num_entries_);
  append_pod<std::uint64_t>(out, chunks_.size());
  const std::span<const std::uint8_t> pl = payload();
  append_pod<std::uint64_t>(out, pl.size());
  for (const ChunkMeta& m : chunks_) {
    append_pod(out, m.byte_offset);
    append_pod(out, m.byte_size);
    append_pod(out, m.first_row);
    append_pod(out, m.num_rows);
    append_pod(out, m.first_entry);
    append_pod(out, m.num_entries);
    append_pod(out, m.time_min);
    append_pod(out, m.time_max);
  }
  out.insert(out.end(), pl.begin(), pl.end());
}

std::size_t CompressedTemporalCsr::serialized_bytes() const {
  return kHeaderBytes + chunks_.size() * kChunkRecordBytes + payload().size();
}

void CompressedTemporalCsr::write_bytes(std::ostream& out,
                                        std::span<const std::uint8_t> bytes) {
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void CompressedTemporalCsr::save(const std::string& path) const {
  std::vector<std::uint8_t> bytes;
  serialize_to(bytes);
  std::ofstream out(path, std::ios::binary);
  PMPR_CHECK_MSG(static_cast<bool>(out),
                 "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  PMPR_CHECK_MSG(static_cast<bool>(out), "write failure on " << path);
}

CompressedTemporalCsr CompressedTemporalCsr::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  PMPR_CHECK_MSG(static_cast<bool>(in), "cannot open " << path);
  const std::streamoff size = in.tellg();
  PMPR_CHECK_MSG(size >= 0, "cannot stat " << path);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  if (!bytes.empty()) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    PMPR_CHECK_MSG(static_cast<bool>(in), "short read on " << path);
  }
  return parse(bytes, nullptr, 0, path);
}

CompressedTemporalCsr CompressedTemporalCsr::map_at(
    std::shared_ptr<MmapFile> file, std::size_t offset, std::size_t size) {
  PMPR_CHECK_MSG(file != nullptr, "map_at needs a file");
  const std::span<const std::uint8_t> all = file->bytes();
  PMPR_CHECK_MSG(offset <= all.size() && size <= all.size() - offset,
                 "mapped section [" << offset << ", +" << size
                                    << ") exceeds the file ("
                                    << all.size() << " bytes)");
  const std::span<const std::uint8_t> bytes = all.subspan(offset, size);
  return parse(bytes, std::move(file), offset, "mapped compressed CSR");
}

CompressedTemporalCsr CompressedTemporalCsr::parse(
    std::span<const std::uint8_t> bytes, std::shared_ptr<MmapFile> file,
    std::size_t file_offset, const std::string& origin) {
  PMPR_CHECK_MSG(bytes.size() >= kHeaderBytes,
                 origin << ": truncated compressed-CSR header");
  PMPR_CHECK_MSG(std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0,
                 origin << ": not a pmpr compressed-CSR file");
  const auto endian = read_pod<std::uint16_t>(bytes, 8);
  PMPR_CHECK_MSG(endian == kEndianMarker,
                 origin << ": endianness mismatch (written on a foreign-"
                           "endian machine)");
  const auto codec = read_pod<std::uint8_t>(bytes, 10);
  PMPR_CHECK_MSG(codec == kCodecDeltaVarint,
                 origin << ": unsupported compression kind " << int{codec});

  CompressedTemporalCsr out;
  out.num_rows_ = read_pod<std::uint64_t>(bytes, 16);
  out.num_entries_ = read_pod<std::uint64_t>(bytes, 24);
  const auto num_chunks = read_pod<std::uint64_t>(bytes, 32);
  const auto payload_bytes = read_pod<std::uint64_t>(bytes, 40);
  // Size-bound the chunk count before sizing any allocation from it: a
  // corrupt or hostile header must not trigger a huge resize (same defense
  // as the edge_list/export binary loaders).
  PMPR_CHECK_MSG(num_chunks <= (bytes.size() - kHeaderBytes) /
                                   kChunkRecordBytes,
                 origin << ": chunk count " << num_chunks
                        << " exceeds what the file can hold");
  const std::size_t table_end =
      kHeaderBytes + static_cast<std::size_t>(num_chunks) * kChunkRecordBytes;
  PMPR_CHECK_MSG(payload_bytes == bytes.size() - table_end,
                 origin << ": payload size " << payload_bytes
                        << " disagrees with the file size");

  out.chunks_.resize(static_cast<std::size_t>(num_chunks));
  std::size_t pos = kHeaderBytes;
  for (ChunkMeta& m : out.chunks_) {
    m.byte_offset = read_pod<std::uint64_t>(bytes, pos);
    m.byte_size = read_pod<std::uint64_t>(bytes, pos + 8);
    m.first_row = read_pod<std::uint64_t>(bytes, pos + 16);
    m.num_rows = read_pod<std::uint64_t>(bytes, pos + 24);
    m.first_entry = read_pod<std::uint64_t>(bytes, pos + 32);
    m.num_entries = read_pod<std::uint64_t>(bytes, pos + 40);
    m.time_min = read_pod<TimeValue>(bytes, pos + 48);
    m.time_max = read_pod<TimeValue>(bytes, pos + 56);
    pos += kChunkRecordBytes;
  }
  if (file != nullptr) {
    out.view_ = bytes.subspan(table_end);
    out.file_ = std::move(file);
    out.payload_file_offset_ = file_offset + table_end;
  } else {
    out.owned_payload_.assign(bytes.begin() + static_cast<std::ptrdiff_t>(
                                                  table_end),
                              bytes.end());
  }
  // After the payload is installed: the table checks include a
  // coverage-vs-payload-size comparison.
  out.validate_chunk_table(origin);
  return out;
}

void CompressedTemporalCsr::validate_chunk_table(
    const std::string& origin) const {
  if (chunks_.empty()) {
    PMPR_CHECK_MSG(num_rows_ == 0 && num_entries_ == 0,
                   origin << ": chunkless table claims " << num_rows_
                          << " rows / " << num_entries_ << " entries");
    return;
  }
  std::uint64_t next_row = 0;
  std::uint64_t next_entry = 0;
  std::uint64_t next_byte = 0;
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const ChunkMeta& m = chunks_[c];
    PMPR_CHECK_MSG(m.first_row == next_row && m.num_rows >= 1,
                   origin << ": chunk " << c
                          << " breaks contiguous row coverage");
    PMPR_CHECK_MSG(m.first_entry == next_entry,
                   origin << ": chunk " << c
                          << " breaks contiguous entry coverage");
    PMPR_CHECK_MSG(m.byte_offset == next_byte,
                   origin << ": chunk " << c
                          << " breaks contiguous byte coverage");
    PMPR_CHECK_MSG(m.num_entries == 0 || m.time_min <= m.time_max,
                   origin << ": chunk " << c << " has an inverted time "
                                                "extent");
    next_row = m.first_row + m.num_rows;
    next_entry = m.first_entry + m.num_entries;
    next_byte = m.byte_offset + m.byte_size;
  }
  PMPR_CHECK_MSG(next_row == num_rows_ && next_entry == num_entries_,
                 origin << ": chunk table covers " << next_row << " rows / "
                        << next_entry << " entries, header says "
                        << num_rows_ << " / " << num_entries_);
  PMPR_CHECK_MSG(next_byte == payload().size(),
                 origin << ": chunk table covers " << next_byte
                        << " payload bytes, stream has "
                        << payload().size());
}

void CompressedTemporalCsr::advise(Advice advice) const {
  if (file_ != nullptr) {
    file_->advise(payload_file_offset_, view_.size(), advice);
  }
}

}  // namespace pmpr::io
