// Variable-length integer coding for the compressed temporal CSR
// (io/compressed_csr.hpp): LEB128 varints plus zigzag and wrapping-delta
// helpers.
//
// Timestamp deltas use *wrapping* uint64 subtraction before zigzag:
// uint64(t) - uint64(prev) is exact modulo 2^64 for every int64 pair —
// including INT64_MIN → INT64_MAX spreads where a signed difference would
// overflow — while the zigzag of the bit-pattern keeps small |delta|
// encodings short. C++20 guarantees two's-complement signed↔unsigned
// round-trips, so decode reproduces every input bit-exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace pmpr::io {

/// Upper bound on the encoded size of one 64-bit varint (10·7 ≥ 64).
inline constexpr std::size_t kMaxVarintBytes = 10;

inline void append_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decodes one varint from [p, end) into `out`; returns the advanced
/// cursor. Throws pmpr::InvariantError on truncation or an encoding wider
/// than 64 bits — decode runs over mmap'd file bytes, so corrupt input is
/// an expected failure mode, not UB.
[[nodiscard]] inline const std::uint8_t* decode_varint(
    const std::uint8_t* p, const std::uint8_t* end, std::uint64_t& out) {
  // Fast path: one-byte varints dominate delta streams.
  if (p != end && *p < 0x80) {
    out = *p;
    return p + 1;
  }
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    PMPR_CHECK_MSG(p != end, "varint truncated");
    const std::uint8_t b = *p++;
    // The 10th byte may only carry bit 63 (value 0 or 1); anything else
    // would shift payload bits out of the 64-bit result.
    PMPR_CHECK_MSG(shift < 64 && (shift != 63 || (b & 0x7F) <= 1),
                   "varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  out = v;
  return p;
}

[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  // v >> 63 is an arithmetic shift (sign smear) in C++20.
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t z) {
  // ~(z & 1) + 1 is -(z & 1) in unsigned arithmetic: all-ones when the
  // sign bit was set, zero otherwise.
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

/// Wrapping delta of two int64 values, exact modulo 2^64.
[[nodiscard]] constexpr std::uint64_t wrap_delta(std::int64_t cur,
                                                 std::int64_t prev) {
  return static_cast<std::uint64_t>(cur) - static_cast<std::uint64_t>(prev);
}

/// Inverse of wrap_delta: prev + delta with modular wrap-around.
[[nodiscard]] constexpr std::int64_t wrap_add(std::int64_t prev,
                                              std::uint64_t delta) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(prev) + delta);
}

/// Appends the zigzag varint of the wrapping delta cur - prev.
inline void append_delta(std::vector<std::uint8_t>& out, std::int64_t cur,
                         std::int64_t prev) {
  append_varint(
      out, zigzag_encode(static_cast<std::int64_t>(wrap_delta(cur, prev))));
}

/// Decodes one delta appended by append_delta and applies it to `prev`.
[[nodiscard]] inline const std::uint8_t* decode_delta(const std::uint8_t* p,
                                                      const std::uint8_t* end,
                                                      std::int64_t prev,
                                                      std::int64_t& cur) {
  std::uint64_t z = 0;
  p = decode_varint(p, end, z);
  cur = wrap_add(prev, static_cast<std::uint64_t>(zigzag_decode(z)));
  return p;
}

/// 32-bit variant for column ids: wrapping delta modulo 2^32, sign-extended
/// before zigzag so small forward/backward steps stay short.
inline void append_delta32(std::vector<std::uint8_t>& out, std::uint32_t cur,
                          std::uint32_t prev) {
  const std::uint32_t d = cur - prev;  // wrapping, exact mod 2^32
  append_varint(out, zigzag_encode(static_cast<std::int32_t>(d)));
}

[[nodiscard]] inline const std::uint8_t* decode_delta32(
    const std::uint8_t* p, const std::uint8_t* end, std::uint32_t prev,
    std::uint32_t& cur) {
  std::uint64_t z = 0;
  p = decode_varint(p, end, z);
  cur = prev + static_cast<std::uint32_t>(zigzag_decode(z));
  return p;
}

}  // namespace pmpr::io
