#include "obs/memory.hpp"

#include <algorithm>
#include <fstream>

#include "util/thread_annotations.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define PMPR_OBS_HAVE_RUSAGE 1
#endif

namespace pmpr::obs {

namespace {

constexpr std::array<std::string_view, kNumMemTags> kMemTagNames = {
    "graph",          "compiled_kernel", "decode_scratch",
    "oocore_payload", "obs",             "other",
};

/// Literal track names: record_counter_sample keeps only the pointer.
constexpr std::array<const char*, kNumMemTags> kMemTraceTracks = {
    "mem.tagged.graph",          "mem.tagged.compiled_kernel",
    "mem.tagged.decode_scratch", "mem.tagged.oocore_payload",
    "mem.tagged.obs",            "mem.tagged.other",
};

/// One padded block of monotone alloc/free tallies per registered thread
/// (kNumMemTags * 2 * 8 bytes rounded up to whole cache lines, so adjacent
/// threads never false-share).
struct alignas(64) TallyBlock {
  std::array<std::atomic<std::uint64_t>, kNumMemTags> alloc_bytes{};
  std::array<std::atomic<std::uint64_t>, kNumMemTags> free_bytes{};
};

/// A global live/peak watermark pair, padded so the per-tag pairs don't
/// false-share. Unlike the tallies these cannot be per-thread: live dips
/// and rises across threads, and a watermark of the true combined total
/// needs a single accumulator.
struct alignas(64) LivePeak {
  std::atomic<std::int64_t> live{0};
  std::atomic<std::uint64_t> peak{0};
};

/// 256 owned tally slots + 1 shared overflow slot for any threads beyond
/// that (their adds contend on the overflow block but stay correct).
constexpr std::size_t kOwnedBlocks = 256;
constexpr std::size_t kTotalBlocks = kOwnedBlocks + 1;

/// Index of the cross-tag total in the live/peak array.
constexpr std::size_t kTotalPair = kNumMemTags;

struct Registry {
  std::array<TallyBlock, kTotalBlocks> blocks;
  std::array<LivePeak, kNumMemTags + 1> live;
  std::atomic<std::size_t> next_slot{0};
};

Registry& registry() {
  // Intentionally leaked singleton: worker threads (the global ThreadPool
  // above all) may still record charges while function-local statics are
  // being destroyed at exit, so the registry must outlive every thread.
  static Registry* r = new Registry;
  return *r;
}

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
thread_local std::size_t tls_slot = kNoSlot;

/// Applies a signed delta to one live accumulator and advances its peak
/// watermark. The watermark is exact when charges are serialized (every
/// current charge site builds containers under a lock or on one thread)
/// and conservative-low by at most the in-flight deltas otherwise.
void update_live(LivePeak& lp, std::int64_t delta) {
  // relaxed: live is a commutative tally read by memory_snapshot(), which
  // is advisory by contract while writers are live; no other data is
  // published through it.
  const std::int64_t now = lp.live.fetch_add(delta, std::memory_order_relaxed)
                           + delta;
  if (delta <= 0 || now <= 0) return;
  const auto candidate = static_cast<std::uint64_t>(now);
  // relaxed CAS-max loop: the peak is a monotone watermark over the same
  // advisory tally; ordering against other memory is irrelevant.
  std::uint64_t cur = lp.peak.load(std::memory_order_relaxed);
  while (candidate > cur &&
         // relaxed: same monotone-watermark rationale as the load above.
         !lp.peak.compare_exchange_weak(cur, candidate,
                                        std::memory_order_relaxed)) {
  }
}

/// Registered residency probe (one at a time). Reads and registration
/// share g_probe_mu so unregister_residency_probe() blocks until any
/// in-flight sampler read completes.
Mutex g_probe_mu;
const ResidencyProbe* g_probe PMPR_GUARDED_BY(g_probe_mu) = nullptr;

}  // namespace

std::string_view to_string(MemTag t) {
  return kMemTagNames[static_cast<std::size_t>(t)];
}

const char* trace_track_name(MemTag t) {
  return kMemTraceTracks[static_cast<std::size_t>(t)];
}

namespace detail {

void memory_add(MemTag t, std::uint64_t bytes, bool is_free) {
  Registry& r = registry();
  if (tls_slot == kNoSlot) {
    // seq_cst fetch_add: runs once per thread; no need to reason about a
    // weaker order.
    tls_slot = std::min(r.next_slot.fetch_add(1), kOwnedBlocks);
  }
  const auto idx = static_cast<std::size_t>(t);
  TallyBlock& block = r.blocks[tls_slot];
  // relaxed: monotone commutative tallies, same contract as counter_add —
  // memory_snapshot() is advisory while writers are live.
  (is_free ? block.free_bytes : block.alloc_bytes)[idx].fetch_add(
      bytes, std::memory_order_relaxed);
  const std::int64_t delta = is_free ? -static_cast<std::int64_t>(bytes)
                                     : static_cast<std::int64_t>(bytes);
  update_live(r.live[idx], delta);
  update_live(r.live[kTotalPair], delta);
}

}  // namespace detail

bool set_memory_accounting_enabled(bool enabled) {
  // seq_cst exchange: cold toggle, strongest order keeps reasoning trivial.
  return detail::g_memory_accounting_enabled.exchange(enabled);
}

MemorySnapshot memory_snapshot() {
  Registry& r = registry();
  MemorySnapshot snap;
  for (const TallyBlock& block : r.blocks) {
    for (std::size_t i = 0; i < kNumMemTags; ++i) {
      // relaxed: see memory_add — totals are advisory while writers run.
      snap.tags[i].alloc_bytes +=
          block.alloc_bytes[i].load(std::memory_order_relaxed);
      // relaxed: as above.
      snap.tags[i].free_bytes +=
          block.free_bytes[i].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t i = 0; i < kNumMemTags; ++i) {
    // relaxed: watermark reads over the same advisory tallies.
    snap.tags[i].live_bytes = r.live[i].live.load(std::memory_order_relaxed);
    snap.tags[i].peak_bytes = r.live[i].peak.load(std::memory_order_relaxed);
  }
  snap.total_live_bytes =
      // relaxed: as above.
      r.live[kTotalPair].live.load(std::memory_order_relaxed);
  snap.total_peak_bytes =
      // relaxed: as above.
      r.live[kTotalPair].peak.load(std::memory_order_relaxed);
  return snap;
}

void reset_memory_accounting() {
  Registry& r = registry();
  for (TallyBlock& block : r.blocks) {
    for (std::size_t i = 0; i < kNumMemTags; ++i) {
      // relaxed: reset is documented as racy-by-contract against live
      // producers; snapshot totals remain advisory.
      block.alloc_bytes[i].store(0, std::memory_order_relaxed);
      block.free_bytes[i].store(0, std::memory_order_relaxed);
    }
  }
  for (LivePeak& lp : r.live) {
    // relaxed: as above.
    lp.live.store(0, std::memory_order_relaxed);
    lp.peak.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  // /proc/self/statm: "size resident shared text lib data dt" in pages.
  std::ifstream statm("/proc/self/statm");
  std::uint64_t pages_total = 0;
  std::uint64_t pages_resident = 0;
  if (!(statm >> pages_total >> pages_resident)) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return pages_resident * static_cast<std::uint64_t>(page);
#else
  return 0;
#endif
}

std::uint64_t peak_rss_bytes() {
#if PMPR_OBS_HAVE_RUSAGE
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

void register_residency_probe(const ResidencyProbe* probe) {
  LockGuard lock(g_probe_mu);
  g_probe = probe;
}

void unregister_residency_probe(const ResidencyProbe* probe) {
  LockGuard lock(g_probe_mu);
  if (g_probe == probe) g_probe = nullptr;
}

bool probed_residency(std::uint64_t* resident_bytes,
                      std::uint64_t* budget_bytes) {
  LockGuard lock(g_probe_mu);
  if (g_probe == nullptr) return false;
  *resident_bytes = g_probe->probe_resident_bytes();
  *budget_bytes = g_probe->probe_budget_bytes();
  return true;
}

}  // namespace pmpr::obs
