// Runtime telemetry: async-signal-safe crash postmortem (observability
// pillar 7, death half).
//
// install_crash_handler() registers one handler for SIGSEGV / SIGBUS /
// SIGABRT / SIGFPE that writes a `pmpr-crash-v1` JSON report — signal
// identity, counter snapshot, memory tallies, per-thread identification,
// heartbeat table, and the flight recorder's retained events — to
// `<dump_dir>/pmpr-crash-<pid>.json`, then restores the default action
// and re-raises, so the process still dies with the real signal (exit
// status, core dumps, and CI all see the truth).
//
// Signal-safety discipline (machine-checked by the pmpr-lint rule
// `signal-unsafe-in-handler` over PMPR_ASYNC_SIGNAL_SAFE_BEGIN/END
// regions): the handler allocates nothing, locks nothing, and formats
// through obs/sigsafe.hpp onto a pre-opened fd. Everything it reads —
// the counter/memory registries, the flight recorder rings, the
// heartbeat slots — is lock-free atomic state that install_crash_handler
// pre-warms, so the handler only ever loads already-published pointers.
// The report path is also pre-rendered at install time: the handler does
// no string building.
//
// The same fd writer doubles as the *safe-path* diagnostic reporter:
// write_diagnostic_report() is what the watchdog calls on a stall, so a
// hang dump and a crash dump share one schema and one audited writer.
#pragma once

#include <cstdint>
#include <string>

namespace pmpr::obs {

struct CrashHandlerOptions {
  /// Directory the report lands in ("" = current working directory).
  std::string dump_dir;
};

/// Installs the fatal-signal handler (idempotent; a second call just
/// re-points dump_dir) and pre-warms every registry the handler reads.
/// Returns false if any sigaction registration failed.
bool install_crash_handler(const CrashHandlerOptions& opts = {});

/// Restores the signal dispositions saved by the first install. Test
/// hygiene — production binaries keep the handler for life.
void uninstall_crash_handler();

/// Whether the handler is currently installed (metrics "diagnostics").
[[nodiscard]] bool crash_handler_installed();

/// The exact path the handler will write ("" before the first install).
[[nodiscard]] std::string crash_report_path();

/// What a diagnostic report is about. `kind` and `stalled_phase` must be
/// string literals or otherwise outlive the call.
struct DiagnosticContext {
  const char* kind = "diagnostic";  ///< "signal" | "watchdog_stall" | ...
  int signo = 0;                    ///< Nonzero only for kind "signal".
  const char* stalled_phase = nullptr;  ///< Watchdog: phase that went quiet.
  std::uint32_t stalled_tid = 0;        ///< Watchdog: its heartbeat slot.
  std::int64_t stall_age_ns = 0;        ///< Watchdog: silence duration.
  std::int64_t threshold_ns = 0;        ///< Watchdog: configured threshold.
};

/// Writes a full `pmpr-crash-v1` report to `path` on the safe (non-signal)
/// path — same bytes the crash handler would emit, via the same writer.
/// Returns false when the file cannot be created.
bool write_diagnostic_report(const std::string& path,
                             const DiagnosticContext& ctx);

}  // namespace pmpr::obs
