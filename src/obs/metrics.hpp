// Runtime telemetry: run-metrics serialization (observability pillar 3).
//
// Every runner fills RunResult with per-window convergence data, telemetry
// counter deltas, and a peak-memory estimate; write_metrics_json emits the
// whole record as one JSON object (schema "pmpr-metrics-v1", validated by
// ci/obs_smoke.sh). Benchmarks and the pmpr_run example expose it via
// `--metrics <path>`.
#pragma once

#include <iosfwd>
#include <string>

#include "exec/results.hpp"

namespace pmpr::obs {

/// Writes `result` as one JSON object:
///   { "schema": "pmpr-metrics-v1", "build_seconds": ..., ...,
///     "counters": {"tasks_spawned": ...}, "windows": [{...}, ...] }
void write_metrics_json(const RunResult& result, std::ostream& out);

/// File variant; returns false on IO failure.
[[nodiscard]] bool write_metrics_json(const RunResult& result,
                                      const std::string& path);

}  // namespace pmpr::obs
