// Runtime telemetry: library-wide event counters (observability pillar 1).
//
// A fixed enum of counters covers the hot layers whose behavior explains
// the paper's figures: the work-stealing scheduler (tasks, steals,
// park/unpark — Fig. 7's granularity story), the SpMV/SpMM kernels (edges
// traversed, dangling scans, lane convergence — Fig. 8), and partial
// initialization (vertices reused vs re-seeded — Fig. 6).
//
// Design (same slot discipline as par::parallel_reduce_slots): each thread
// owns a cache-line-padded block of relaxed atomics, claimed on first use
// from a fixed pool; threads beyond the pool share one overflow block
// (still correct — the adds are atomic, merely contended). Aggregation
// (`counters_snapshot`) sums every block; totals are advisory while
// writers are live, exact once the producing threads have quiesced (e.g.
// after ThreadPool::wait returns).
//
// Cost discipline: `count()` is a single relaxed atomic load + branch when
// telemetry is disabled. Hot loops must accumulate locally and flush once
// per chunk — never call count() per edge.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pmpr::obs {

/// Library-wide counter ids. Keep kCounterNames in counters.cpp in sync.
enum class Counter : std::size_t {
  // Scheduler (par::ThreadPool / ws_deque).
  kTasksSpawned = 0,   ///< submit() calls.
  kTasksExecuted,      ///< Tasks run (own pop, injected, or stolen).
  kStealsAttempted,    ///< WsDeque::steal() calls.
  kStealsSucceeded,    ///< steal() calls that returned a task.
  kParks,              ///< Workers that went to sleep on the condvar.
  kUnparks,            ///< notify() slow paths that signalled a sleeper.
  // Kernels (pagerank/).
  kEdgesTraversed,     ///< Adjacency entries visited by PageRank sweeps.
  kDanglingScanned,    ///< Rows/entries visited by dangling-mass scans.
  kLanesConverged,     ///< Windows/lanes that reached tol.
  kIterations,         ///< Power iterations (summed over windows/batches).
  // Initialization (pagerank/partial_init).
  kVerticesReused,     ///< Vertices seeded from the previous window.
  kVerticesReseeded,   ///< Vertices seeded uniformly (full or fresh part).
  // Runners (exec/).
  kWindowsProcessed,   ///< Windows handed to the result sink.
  // Profiling layer (obs/).
  kSamplerTicks,       ///< Scheduler snapshots taken by obs::Sampler.
  kHistogramRecords,   ///< Durations recorded into the latency histograms.
  // SIMD dispatch (pagerank/simd_*): which compiled-sweep ISA ran. One
  // count per sweep invocation (i.e. per power iteration of a compiled
  // SpMM batch), so the three split kIterations of compiled batches by
  // instruction set.
  kSimdSweepScalar,    ///< Compiled sweeps run on the scalar kernel.
  kSimdSweepAvx2,      ///< Compiled sweeps run on the AVX2 kernel.
  kSimdSweepAvx512,    ///< Compiled sweeps run on the AVX-512 kernel.
  // Out-of-core paging (graph/paged_multi_window) and compressed-chunk
  // streaming (pagerank/batch_csr over io/compressed_csr).
  kPartsEvicted,       ///< Parts dropped by the paged store's LRU.
  kPartRefaults,       ///< Re-acquires of a previously evicted part.
  kChunksDecoded,      ///< Compressed chunks decoded by compile passes.
  kChunksPruned,       ///< Chunks skipped via their time extent.
  kBytesDecoded,       ///< Encoded bytes expanded by chunk decodes.
  kWindowOutputBytes,  ///< Rank bytes handed to sinks (read-amp denominator).
};
inline constexpr std::size_t kNumCounters = 24;

/// Human-readable snake_case name (stable; used as JSON keys).
[[nodiscard]] std::string_view to_string(Counter c);

/// A point-in-time aggregate of every counter. Plain values — subtract two
/// snapshots to attribute activity to a phase.
struct CounterSnapshot {
  std::array<std::uint64_t, kNumCounters> values{};

  [[nodiscard]] std::uint64_t operator[](Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }

  /// Element-wise difference, clamped at zero (a concurrent reset between
  /// the two snapshots must not produce huge wrapped values).
  [[nodiscard]] CounterSnapshot delta_since(const CounterSnapshot& base) const {
    CounterSnapshot d;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      d.values[i] = values[i] >= base.values[i] ? values[i] - base.values[i]
                                                : 0;
    }
    return d;
  }
};

inline CounterSnapshot operator-(const CounterSnapshot& a,
                                 const CounterSnapshot& b) {
  return a.delta_since(b);
}

namespace detail {
/// Inline so counters_enabled() compiles to one load at every call site.
inline std::atomic<bool> g_counters_enabled{false};
inline std::atomic<bool> g_metrics_enabled{false};
/// Out-of-line slow path: claims this thread's block on first use and adds.
void counter_add(Counter c, std::uint64_t n);
}  // namespace detail

/// Whether count() records anything. The single check on the disabled hot
/// path.
[[nodiscard]] inline bool counters_enabled() {
  // relaxed: an advisory on/off gate — stale reads only delay when counting
  // starts/stops by a few events; no data is published through this flag.
  return detail::g_counters_enabled.load(std::memory_order_relaxed);
}

/// Whether kernels should record per-iteration residual trajectories into
/// PagerankStats (checked once per power iteration, never per edge).
[[nodiscard]] inline bool metrics_enabled() {
  // relaxed: advisory gate, same argument as counters_enabled().
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Enables/disables counters. Returns the previous setting.
bool set_counters_enabled(bool enabled);

/// Enables/disables per-iteration run metrics (residual trajectories).
/// Returns the previous setting.
bool set_metrics_enabled(bool enabled);

/// Adds `n` to counter `c` for the calling thread. Near-zero cost when
/// disabled (one relaxed load). Safe from any thread, including pool
/// workers mid-steal.
inline void count(Counter c, std::uint64_t n = 1) {
  if (!counters_enabled()) return;
  detail::counter_add(c, n);
}

/// Sums every thread block. Advisory while producers run; exact after they
/// quiesce.
[[nodiscard]] CounterSnapshot counters_snapshot();

/// Zeroes every block. Only meaningful while no producer is mid-flight
/// (concurrent adds may survive the reset — totals stay advisory).
void reset_counters();

}  // namespace pmpr::obs
