#include "obs/crash.hpp"

#include <fcntl.h>
#include <signal.h>  // NOLINT: sigaction/sigaltstack need the POSIX header
#include <unistd.h>

#include <atomic>
#include <cstddef>

#include "obs/counters.hpp"
#include "obs/flightrec.hpp"
#include "obs/memory.hpp"
#include "obs/sigsafe.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace pmpr::obs {

namespace {

constexpr int kSignals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE};
constexpr std::size_t kNumSignals = 4;

std::atomic<bool> g_installed{false};
/// Re-entry gate: a crash inside the handler (or a second thread dying
/// concurrently) skips straight to the re-raise.
std::atomic<bool> g_in_handler{false};

/// Pre-rendered report path: the handler must not build strings.
char g_report_path[1024] = {};
struct sigaction g_old_actions[kNumSignals];
/// Dedicated stack so the handler survives stack-overflow SIGSEGVs.
alignas(16) char g_alt_stack[64 * 1024];

// PMPR_ASYNC_SIGNAL_SAFE_BEGIN
//
// Nothing below this marker (until END) may allocate, lock, touch
// iostreams/stdio, or construct std::string — enforced by the pmpr-lint
// rule signal-unsafe-in-handler. Output goes through obs/sigsafe.hpp;
// all cross-thread state it reads is pre-warmed lock-free atomics.

const char* signal_name(int signo) {
  switch (signo) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    default: return "SIG?";
  }
}

/// The one report writer, shared verbatim by the crash handler (signal
/// path) and write_diagnostic_report (safe path) — a hang dump and a
/// crash dump are the same schema from the same audited code.
void write_report_fd(int fd, const DiagnosticContext& ctx) {
  sigsafe_puts(fd, "{\n  \"schema\": \"pmpr-crash-v1\",\n  \"kind\": \"");
  sigsafe_puts(fd, ctx.kind);
  sigsafe_puts(fd, "\",\n  \"pid\": ");
  sigsafe_put_u64(fd, static_cast<std::uint64_t>(::getpid()));
  sigsafe_puts(fd, ",\n  \"t_ns\": ");
  sigsafe_put_i64(fd, trace_now_ns());
  if (ctx.signo != 0) {
    sigsafe_puts(fd, ",\n  \"signal\": ");
    sigsafe_put_i64(fd, ctx.signo);
    sigsafe_puts(fd, ",\n  \"signal_name\": \"");
    sigsafe_puts(fd, signal_name(ctx.signo));
    sigsafe_puts(fd, "\"");
  }
  sigsafe_puts(fd, ",\n  \"stalled_phase\": \"");
  sigsafe_put_json_str(fd,
                       ctx.stalled_phase != nullptr ? ctx.stalled_phase : "");
  sigsafe_puts(fd, "\",\n  \"stalled_tid\": ");
  sigsafe_put_u64(fd, ctx.stalled_tid);
  sigsafe_puts(fd, ",\n  \"stall_age_ns\": ");
  sigsafe_put_i64(fd, ctx.stall_age_ns);
  sigsafe_puts(fd, ",\n  \"threshold_ns\": ");
  sigsafe_put_i64(fd, ctx.threshold_ns);

  // Counter snapshot: counters_snapshot() is pure relaxed loads over the
  // leaked registry — signal-safe once pre-warmed.
  const CounterSnapshot counters = counters_snapshot();
  sigsafe_puts(fd, ",\n  \"counters\": {");
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const std::string_view name = to_string(static_cast<Counter>(i));
    if (i != 0) sigsafe_puts(fd, ",");
    sigsafe_puts(fd, "\n    \"");
    sigsafe_write(fd, name.data(), name.size());
    sigsafe_puts(fd, "\": ");
    sigsafe_put_u64(fd, counters.values[i]);
  }
  sigsafe_puts(fd, "\n  }");

  // Memory tallies: memory_snapshot() is also lock-free (the mincore /
  // /proc readers are NOT — deliberately absent here).
  const MemorySnapshot mem = memory_snapshot();
  sigsafe_puts(fd, ",\n  \"memory\": {\n    \"total_live_bytes\": ");
  sigsafe_put_i64(fd, mem.total_live_bytes);
  sigsafe_puts(fd, ",\n    \"total_peak_bytes\": ");
  sigsafe_put_u64(fd, mem.total_peak_bytes);
  sigsafe_puts(fd, ",\n    \"tags\": {");
  for (std::size_t i = 0; i < kNumMemTags; ++i) {
    const std::string_view name = to_string(static_cast<MemTag>(i));
    if (i != 0) sigsafe_puts(fd, ",");
    sigsafe_puts(fd, "\n      \"");
    sigsafe_write(fd, name.data(), name.size());
    sigsafe_puts(fd, "\": {\"live_bytes\": ");
    sigsafe_put_i64(fd, mem.tags[i].live_bytes);
    sigsafe_puts(fd, ", \"peak_bytes\": ");
    sigsafe_put_u64(fd, mem.tags[i].peak_bytes);
    sigsafe_puts(fd, "}");
  }
  sigsafe_puts(fd, "\n    }\n  }");

  sigsafe_puts(fd, ",\n  \"last_error\": \"");
  fr_emit_last_error_json(fd);
  sigsafe_puts(fd, "\",\n  \"threads\": ");
  fr_emit_threads_json(fd);
  sigsafe_puts(fd, ",\n  \"heartbeats\": ");
  watchdog_emit_heartbeats_json(fd);
  sigsafe_puts(fd, ",\n  \"events\": ");
  fr_emit_events_json(fd);
  sigsafe_puts(fd, "\n}\n");
}

void crash_signal_handler(int signo, siginfo_t* info, void*) {
  if (!g_in_handler.exchange(true)) {
    // The crash handler is the one sanctioned bypass of io::MmapFile for
    // raw ::open — only write(2)-style calls are async-signal-safe here
    // (see the mmap-syscall-confined allowlist entry in ci/pmpr_lint.py).
    const int fd = ::open(g_report_path,
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd >= 0) {
      DiagnosticContext ctx;
      ctx.kind = "signal";
      ctx.signo = signo;
      write_report_fd(fd, ctx);
      ::close(fd);
    }
    sigsafe_puts(2, "pmpr: fatal ");
    sigsafe_puts(2, signal_name(signo));
    if (info != nullptr && (signo == SIGSEGV || signo == SIGBUS)) {
      sigsafe_puts(2, " at 0x");
      char buf[20];
      sigsafe_write(2, buf,
                    sigsafe_format_u64(
                        buf, reinterpret_cast<std::uint64_t>(info->si_addr)));
    }
    sigsafe_puts(2, " — crash report: ");
    sigsafe_puts(2, fd >= 0 ? g_report_path : "(unwritable)");
    sigsafe_puts(2, "\n");
  }
  // Restore the default action and re-raise: the process must still die
  // by this signal (exit status / core dump semantics preserved).
  struct sigaction dfl = {};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  ::sigaction(signo, &dfl, nullptr);
  ::raise(signo);
}

// PMPR_ASYNC_SIGNAL_SAFE_END

}  // namespace

bool install_crash_handler(const CrashHandlerOptions& opts) {
  // Pre-warm every lock-free registry the handler reads, so the signal
  // path only ever loads already-published pointers.
  fr_prewarm();
  watchdog_prewarm();
  (void)trace_now_ns();
  (void)counters_snapshot();
  (void)memory_snapshot();

  // Pre-render the report path; the handler does no string building.
  const std::string dir = opts.dump_dir.empty() ? "." : opts.dump_dir;
  const std::string path =
      dir + "/pmpr-crash-" + std::to_string(::getpid()) + ".json";
  std::size_t n = 0;
  for (; n + 1 < sizeof(g_report_path) && n < path.size(); ++n) {
    g_report_path[n] = path[n];
  }
  g_report_path[n] = '\0';

  if (g_installed.exchange(true)) return true;  // already installed

  stack_t ss = {};
  ss.ss_sp = g_alt_stack;
  ss.ss_size = sizeof(g_alt_stack);
  ::sigaltstack(&ss, nullptr);  // best effort: SA_ONSTACK degrades gracefully

  bool ok = true;
  for (std::size_t i = 0; i < kNumSignals; ++i) {
    struct sigaction sa = {};
    sa.sa_sigaction = crash_signal_handler;
    sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
    sigemptyset(&sa.sa_mask);
    if (::sigaction(kSignals[i], &sa, &g_old_actions[i]) != 0) ok = false;
  }
  return ok;
}

void uninstall_crash_handler() {
  if (!g_installed.exchange(false)) return;
  for (std::size_t i = 0; i < kNumSignals; ++i) {
    ::sigaction(kSignals[i], &g_old_actions[i], nullptr);
  }
}

bool crash_handler_installed() {
  // seq_cst load of a cold flag.
  return g_installed.load();
}

std::string crash_report_path() { return std::string(g_report_path); }

bool write_diagnostic_report(const std::string& path,
                             const DiagnosticContext& ctx) {
  // Same raw ::open as the handler (allowlisted for crash.cpp): keeping
  // the safe path byte-identical to the signal path is the point.
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  write_report_fd(fd, ctx);
  ::close(fd);
  return true;
}

}  // namespace pmpr::obs
