#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>

#include "util/thread_annotations.hpp"

namespace pmpr::obs {

namespace {

/// A raw span record: the name pointer (a literal) is stored as-is.
struct Record {
  const char* name;
  std::int64_t start_ns;
  std::int64_t end_ns;
};

/// Per-thread span buffer. The owning thread appends; collectors copy.
/// Both sides take `mu` — uncontended in steady state (collection happens
/// between runs), so the append cost is a plain lock/unlock.
struct ThreadBuf {
  explicit ThreadBuf(std::uint32_t id) : tid(id) {}
  const std::uint32_t tid;
  Mutex mu;
  std::vector<Record> records PMPR_GUARDED_BY(mu);
};

struct Registry {
  const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  Mutex mu;
  /// Owning list; buffers are never removed, so thread_local pointers into
  /// it stay valid for the thread's lifetime.
  std::vector<std::unique_ptr<ThreadBuf>> bufs PMPR_GUARDED_BY(mu);
};

Registry& registry() {
  // Intentionally leaked singleton: pool worker threads may still close
  // spans while function-local statics are destroyed at exit, so the
  // registry (and its epoch) must outlive every thread.
  static Registry* r = new Registry;
  return *r;
}

thread_local ThreadBuf* tls_buf = nullptr;

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

}  // namespace

namespace detail {

void record_span(const char* name, std::int64_t start_ns,
                 std::int64_t end_ns) {
  ThreadBuf* buf = tls_buf;
  if (buf == nullptr) {
    Registry& r = registry();
    LockGuard lock(r.mu);
    r.bufs.push_back(
        std::make_unique<ThreadBuf>(static_cast<std::uint32_t>(r.bufs.size())));
    buf = r.bufs.back().get();
    tls_buf = buf;
  }
  LockGuard lock(buf->mu);
  buf->records.push_back(Record{name, start_ns, end_ns});
}

}  // namespace detail

bool set_tracing_enabled(bool enabled) {
  if (enabled) {
    registry();  // Pin the epoch before the first span can start.
  }
  // seq_cst exchange: cold toggle, strongest order keeps reasoning trivial.
  return detail::g_tracing_enabled.exchange(enabled);
}

void clear_trace() {
  Registry& r = registry();
  LockGuard lock(r.mu);
  for (auto& buf : r.bufs) {
    LockGuard buf_lock(buf->mu);
    buf->records.clear();
  }
}

std::int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - registry().epoch)
      .count();
}

std::vector<TraceEvent> collect_trace() {
  std::vector<TraceEvent> events;
  Registry& r = registry();
  LockGuard lock(r.mu);
  for (auto& buf : r.bufs) {
    LockGuard buf_lock(buf->mu);
    for (const Record& rec : buf->records) {
      events.push_back(
          TraceEvent{rec.name, buf->tid, rec.start_ns, rec.end_ns});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.tid < b.tid;
            });
  return events;
}

std::size_t trace_event_count() {
  std::size_t n = 0;
  Registry& r = registry();
  LockGuard lock(r.mu);
  for (auto& buf : r.bufs) {
    LockGuard buf_lock(buf->mu);
    n += buf->records.size();
  }
  return n;
}

void write_chrome_trace(std::ostream& out) {
  const std::vector<TraceEvent> events = collect_trace();
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    // Chrome trace "complete" event: ts/dur in microseconds. Three decimal
    // digits keep nanosecond resolution.
    std::ostringstream num;
    num.setf(std::ios::fixed);
    num.precision(3);
    num << static_cast<double>(e.start_ns) * 1e-3;
    std::ostringstream dur;
    dur.setf(std::ios::fixed);
    dur.precision(3);
    dur << static_cast<double>(e.end_ns - e.start_ns) * 1e-3;
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << escape_json(e.name)
        << "\", \"cat\": \"pmpr\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
        << e.tid << ", \"ts\": " << num.str() << ", \"dur\": " << dur.str()
        << "}";
  }
  out << "\n  ]\n}\n";
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

}  // namespace pmpr::obs
