#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/flightrec.hpp"
#include "obs/watchdog.hpp"
#include "util/thread_annotations.hpp"

namespace pmpr::obs {

namespace {

/// A raw span record: the name pointer (a literal) is stored as-is.
struct Record {
  const char* name;
  std::int64_t start_ns;
  std::int64_t end_ns;
};

/// Per-thread span buffer. The owning thread appends; collectors copy.
/// Both sides take `mu` — uncontended in steady state (collection happens
/// between runs), so the append cost is a plain lock/unlock.
struct ThreadBuf {
  explicit ThreadBuf(std::uint32_t id) : tid(id) {}
  const std::uint32_t tid;
  Mutex mu;
  std::vector<Record> records PMPR_GUARDED_BY(mu);
  /// Perfetto track label; empty = unnamed (no metadata event emitted).
  std::string name PMPR_GUARDED_BY(mu);
};

struct Registry {
  const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  Mutex mu;
  /// Owning list; buffers are never removed, so thread_local pointers into
  /// it stay valid for the thread's lifetime.
  std::vector<std::unique_ptr<ThreadBuf>> bufs PMPR_GUARDED_BY(mu);
  /// Counter-track samples ("ph":"C"). One flat list under the registry
  /// lock: the producer is the (single) sampler thread, so contention with
  /// span recording is limited to first-use thread registration.
  std::vector<CounterSample> counter_samples PMPR_GUARDED_BY(mu);
};

Registry& registry() {
  // Intentionally leaked singleton: pool worker threads may still close
  // spans while function-local statics are destroyed at exit, so the
  // registry (and its epoch) must outlive every thread.
  static Registry* r = new Registry;
  return *r;
}

thread_local ThreadBuf* tls_buf = nullptr;

/// Returns the calling thread's buffer, registering it on first use.
ThreadBuf& my_buf() {
  ThreadBuf* buf = tls_buf;
  if (buf == nullptr) {
    Registry& r = registry();
    LockGuard lock(r.mu);
    r.bufs.push_back(
        std::make_unique<ThreadBuf>(static_cast<std::uint32_t>(r.bufs.size())));
    buf = r.bufs.back().get();
    tls_buf = buf;
  }
  return *buf;
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

}  // namespace

namespace detail {

void record_span(const char* name, std::int64_t start_ns,
                 std::int64_t end_ns) {
  ThreadBuf& buf = my_buf();
  LockGuard lock(buf.mu);
  buf.records.push_back(Record{name, start_ns, end_ns});
}

}  // namespace detail

void record_counter_sample(const char* name, std::int64_t t_ns,
                           double value) {
  if (!tracing_enabled()) return;
  Registry& r = registry();
  LockGuard lock(r.mu);
  r.counter_samples.push_back(CounterSample{name, t_ns, value});
}

std::vector<CounterSample> collect_counter_samples() {
  Registry& r = registry();
  std::vector<CounterSample> samples;
  {
    LockGuard lock(r.mu);
    samples = r.counter_samples;
  }
  std::sort(samples.begin(), samples.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.t_ns != b.t_ns ? a.t_ns < b.t_ns : a.name < b.name;
            });
  return samples;
}

void set_thread_name(std::string_view name) {
  {
    ThreadBuf& buf = my_buf();
    LockGuard lock(buf.mu);
    buf.name.assign(name);
  }
  // One naming call labels every diagnostics surface: the Perfetto track
  // above, the flight-recorder ring, and the watchdog heartbeat slot.
  fr_set_thread_label(name);
  heartbeat_set_label(name);
}

bool set_tracing_enabled(bool enabled) {
  if (enabled) {
    registry();  // Pin the epoch before the first span can start.
  }
  // seq_cst exchange: cold toggle, strongest order keeps reasoning trivial.
  return detail::g_tracing_enabled.exchange(enabled);
}

void clear_trace() {
  Registry& r = registry();
  LockGuard lock(r.mu);
  for (auto& buf : r.bufs) {
    LockGuard buf_lock(buf->mu);
    buf->records.clear();
  }
  r.counter_samples.clear();
}

std::int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - registry().epoch)
      .count();
}

std::vector<TraceEvent> collect_trace() {
  std::vector<TraceEvent> events;
  Registry& r = registry();
  LockGuard lock(r.mu);
  for (auto& buf : r.bufs) {
    LockGuard buf_lock(buf->mu);
    for (const Record& rec : buf->records) {
      events.push_back(
          TraceEvent{rec.name, buf->tid, rec.start_ns, rec.end_ns});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.tid < b.tid;
            });
  return events;
}

std::size_t trace_event_count() {
  std::size_t n = 0;
  Registry& r = registry();
  LockGuard lock(r.mu);
  for (auto& buf : r.bufs) {
    LockGuard buf_lock(buf->mu);
    n += buf->records.size();
  }
  return n;
}

namespace {

/// Microseconds with three decimals — nanosecond resolution in the µs
/// units Chrome trace mandates.
std::string micros(std::int64_t ns) {
  std::ostringstream num;
  num.setf(std::ios::fixed);
  num.precision(3);
  num << static_cast<double>(ns) * 1e-3;
  return num.str();
}

}  // namespace

void write_chrome_trace(std::ostream& out) {
  const std::vector<TraceEvent> events = collect_trace();
  const std::vector<CounterSample> samples = collect_counter_samples();
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
  {
    Registry& r = registry();
    LockGuard lock(r.mu);
    for (auto& buf : r.bufs) {
      LockGuard buf_lock(buf->mu);
      if (!buf->name.empty()) thread_names.emplace_back(buf->tid, buf->name);
    }
  }
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  const auto sep = [&]() -> const char* {
    const char* s = first ? "\n" : ",\n";
    first = false;
    return s;
  };
  // Perfetto track labels ("ph":"M" metadata). Only emitted alongside real
  // events — an empty trace stays a bare valid skeleton.
  if (!events.empty() || !samples.empty()) {
    out << sep()
        << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
           "\"args\": {\"name\": \"pmpr\"}}";
    for (const auto& [tid, name] : thread_names) {
      out << sep()
          << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
             "\"tid\": "
          << tid << ", \"args\": {\"name\": \"" << escape_json(name)
          << "\"}}";
    }
  }
  for (const TraceEvent& e : events) {
    // Chrome trace "complete" event: ts/dur in microseconds.
    out << sep() << "    {\"name\": \"" << escape_json(e.name)
        << "\", \"cat\": \"pmpr\", \"ph\": \"X\", \"pid\": 0, \"tid\": "
        << e.tid << ", \"ts\": " << micros(e.start_ns)
        << ", \"dur\": " << micros(e.end_ns - e.start_ns) << "}";
  }
  for (const CounterSample& s : samples) {
    // Counter event: Perfetto draws one area-chart track per name, fed by
    // the single "value" series in args.
    std::ostringstream val;
    val.setf(std::ios::fixed);
    val.precision(3);
    val << s.value;
    out << sep() << "    {\"name\": \"" << escape_json(s.name)
        << "\", \"cat\": \"pmpr\", \"ph\": \"C\", \"pid\": 0, \"tid\": 0, "
           "\"ts\": "
        << micros(s.t_ns) << ", \"args\": {\"value\": " << val.str()
        << "}}";
  }
  out << "\n  ]\n}\n";
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

}  // namespace pmpr::obs
