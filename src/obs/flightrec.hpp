// Runtime telemetry: the flight recorder (observability pillar 7 —
// failure-time diagnostics).
//
// Pillars 1–6 explain runs that finish. This one explains runs that
// don't: every thread owns a cache-line-padded fixed-capacity ring of
// recent structured events (runner span begin/end with window ids,
// scheduler park/unpark, oocore evict/refault, last-error breadcrumbs,
// watchdog activity), recorded through the same padded-block slot
// discipline as counters.cpp. Recording costs one relaxed load + branch
// when the gate is off and a handful of relaxed stores when on — cheap
// enough to leave armed for a whole run even when full Chrome tracing is
// off, which is the point: the ring is what's left to read after the
// process dies mid-window.
//
// Three consumers:
//   * the safe path: write_blackbox_json() emits a versioned
//     `pmpr-blackbox-v1` JSON snapshot; drain_flight_recorder() consumes
//     the retained events exactly once (mutex-serialized);
//   * the crash path: obs/crash.cpp's signal handler walks the same
//     pre-allocated registry with fr_emit_events_json(fd) — async-signal-
//     safe by construction (atomic loads + write(2) only, no allocation);
//   * the metrics path: flight_recorder_stats() backs the pmpr-metrics-v4
//     "diagnostics" section (records, drops, drains).
//
// Consistency contract (same as counters): rings are advisory while
// writers are live — after a ring wraps, a reader may observe a record
// whose fields mix two writes. Every field is an individually-relaxed
// atomic, so torn *values* cannot occur, and every name pointer refers to
// static storage (string literals or the leaked registry's own buffers),
// so a stale pointer is always dereferenceable. Totals and event lists
// are exact once producers quiesce.
//
// All `name` arguments must be string literals or otherwise immortal:
// records store the pointer, never a copy (fr_record_error is the one
// exception — it copies into a per-thread buffer first).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace pmpr::obs {

/// Structured event kinds. Keep kFrEventNames in flightrec.cpp in sync.
enum class FrEvent : std::uint8_t {
  kSpanBegin = 0,  ///< Runner phase entered (a = window/batch id).
  kSpanEnd,        ///< Runner phase left (a = window/batch id).
  kWindowDone,     ///< Window handed to the result sink (a = window id).
  kTaskRun,        ///< Pool worker picked up a task.
  kPark,           ///< Pool worker went to sleep on the condvar.
  kUnpark,         ///< notify() signalled a sleeper.
  kEvict,          ///< Paged store dropped a part (a = part, b = bytes).
  kRefault,        ///< Paged store re-mapped an evicted part (a = part).
  kError,          ///< Exception breadcrumb (name = truncated what()).
  kWatchdogArm,    ///< Watchdog started monitoring (a = threshold ns).
  kWatchdogFire,   ///< Watchdog declared a stall (a = heartbeat age ns).
  kMark,           ///< Free-form breadcrumb.
};
inline constexpr std::size_t kNumFrEvents = 12;

/// Stable snake_case name (used as JSON "kind" values).
[[nodiscard]] const char* to_string(FrEvent e);

/// One event copied out of the rings by snapshot/drain (safe path only;
/// the crash path never materializes these).
struct FlightEvent {
  std::int64_t t_ns = 0;   ///< trace_now_ns() timestamp.
  std::uint32_t tid = 0;   ///< Recorder block index of the writing thread.
  FrEvent kind = FrEvent::kMark;
  std::string name;        ///< Label ("" when the record carried none).
  std::uint64_t a = 0;     ///< Kind-specific payload (window id, bytes...).
  std::uint64_t b = 0;
};

/// Lifetime totals for the metrics "diagnostics" section.
struct FlightRecorderStats {
  std::uint64_t records = 0;  ///< Events ever recorded (incl. overwritten).
  std::uint64_t dropped = 0;  ///< Events overwritten before being read.
  std::uint64_t drains = 0;   ///< Completed drain_flight_recorder() calls.
  std::uint64_t threads = 0;  ///< Ring blocks claimed (overflow counts 1).
};

namespace detail {
/// Inline so flight_recorder_enabled() compiles to one load per call site.
inline std::atomic<bool> g_flight_recorder_enabled{false};
/// Out-of-line slow path: claims this thread's ring on first use and
/// appends one record.
void fr_add(FrEvent kind, const char* name, std::uint64_t a, std::uint64_t b);
}  // namespace detail

/// Whether fr_record() records anything. The single check on the disabled
/// hot path.
[[nodiscard]] inline bool flight_recorder_enabled() {
  // relaxed: an advisory on/off gate — stale reads only delay when
  // recording starts/stops by a few events; no data is published through
  // this flag.
  return detail::g_flight_recorder_enabled.load(std::memory_order_relaxed);
}

/// Enables/disables the recorder. Returns the previous setting.
bool set_flight_recorder_enabled(bool enabled);

/// Appends one event to the calling thread's ring. Near-zero cost when
/// disabled (one relaxed load). Safe from any thread, including pool
/// workers mid-steal. `name` must be a string literal (or otherwise have
/// static storage duration) — the pointer is stored, not the bytes.
inline void fr_record(FrEvent kind, const char* name = nullptr,
                      std::uint64_t a = 0, std::uint64_t b = 0) {
  if (!flight_recorder_enabled()) return;
  detail::fr_add(kind, name, a, b);
}

/// Records a kError breadcrumb carrying `what` (truncated to the ring
/// block's fixed error buffer — this is the one API that copies bytes, so
/// transient exception text survives). Also remembered as the process-wide
/// last error for crash reports. Gated like fr_record.
void fr_record_error(const char* what);

/// Labels the calling thread's ring block for crash-report thread
/// identification ("pool.worker-3", "obs.sampler", "main"). Copies up to
/// 31 bytes. Unlike fr_record this is NOT gated: threads name themselves
/// at spawn, typically before the recorder is enabled, and the cost is
/// once per thread. obs::set_thread_name() forwards here, so every
/// existing naming site feeds the recorder for free.
void fr_set_thread_label(std::string_view label);

/// Copies out every retained event, oldest first (per-ring order is exact;
/// cross-thread order is by timestamp). Non-consuming. Advisory while
/// writers are live, exact after they quiesce.
[[nodiscard]] std::vector<FlightEvent> snapshot_flight_recorder();

/// Consumes the retained events: each event is returned by exactly one
/// drain call, even under concurrent drains (serialized on an internal
/// mutex — this is the "trace exporter shutdown" contract the sampler
/// tests exercise). Events recorded after a drain started may land in
/// either that drain or the next.
[[nodiscard]] std::vector<FlightEvent> drain_flight_recorder();

/// Drops every retained event and zeroes the lifetime totals. Test-only
/// territory: racy-by-contract against live producers.
void clear_flight_recorder();

/// Lifetime totals. Advisory while producers run.
[[nodiscard]] FlightRecorderStats flight_recorder_stats();

/// Writes the versioned `pmpr-blackbox-v1` JSON (schema, stats, threads,
/// events) without consuming the rings.
void write_blackbox_json(std::ostream& out);

/// Convenience: writes the blackbox to `path`. Returns false when the
/// file cannot be opened.
bool write_blackbox_json(const std::string& path);

/// The process-wide last error recorded via fr_record_error, or "" when
/// none. Safe-path accessor (the crash path reads the same buffer through
/// fr_emit_last_error_json).
[[nodiscard]] std::string last_error();

// --- async-signal-safe emitters (crash path; see obs/crash.cpp) --------

/// Writes the JSON array of retained events to `fd` using only atomic
/// loads and write(2). Returns the number of events emitted.
std::uint64_t fr_emit_events_json(int fd);

/// Writes the JSON array of per-thread ring identifications
/// ({"tid","label","records"}) to `fd`. Async-signal-safe.
void fr_emit_threads_json(int fd);

/// Writes the last-error breadcrumb as a JSON string body to `fd` (no
/// surrounding quotes). Async-signal-safe.
void fr_emit_last_error_json(int fd);

/// Forces the registry (and its rings) to exist now, so a later signal
/// handler only ever loads an already-published pointer. Called by
/// install_crash_handler(); harmless to call repeatedly.
void fr_prewarm();

}  // namespace pmpr::obs
