// Scheduler introspection interface consumed by the sampling profiler.
//
// The Sampler (obs/sampler.hpp) snapshots a running scheduler without
// knowing its concrete type: par::ThreadPool implements this interface.
// Defining the contract here (and not in par/) keeps obs below par in the
// module DAG (ci/layers.toml) — par depends on obs for counters and trace
// spans, so obs must never include par headers back.
//
// All methods are advisory monitor reads: approximate, wait-free or
// briefly-locked on the implementation side, and safe to call from any
// thread while the scheduler runs.
#pragma once

#include <cstddef>

namespace pmpr::obs {

class SchedulerProbe {
 public:
  virtual ~SchedulerProbe() = default;

  /// Number of workers (stable for the scheduler's lifetime).
  [[nodiscard]] virtual std::size_t num_workers() const = 0;

  /// Approximate depth of worker `index`'s queue; 0 for out-of-range.
  [[nodiscard]] virtual std::size_t approx_queued(std::size_t index) const = 0;

  /// Approximate total queued tasks (all workers + any injection queue).
  [[nodiscard]] virtual std::size_t approx_total_queued() const = 0;

  /// Workers currently parked waiting for work.
  [[nodiscard]] virtual std::size_t parked_workers() const = 0;
};

}  // namespace pmpr::obs
