#include "obs/counters.hpp"

#include <algorithm>

namespace pmpr::obs {

namespace {

constexpr std::array<std::string_view, kNumCounters> kCounterNames = {
    "tasks_spawned",     "tasks_executed",   "steals_attempted",
    "steals_succeeded",  "parks",            "unparks",
    "edges_traversed",   "dangling_scanned", "lanes_converged",
    "iterations",        "vertices_reused",  "vertices_reseeded",
    "windows_processed", "sampler_ticks",    "histogram_records",
    "simd_sweep_scalar", "simd_sweep_avx2",  "simd_sweep_avx512",
    "parts_evicted",     "part_refaults",    "chunks_decoded",
    "chunks_pruned",     "bytes_decoded",    "window_output_bytes",
};

/// One padded block per registered thread. kNumCounters * 8 bytes rounded
/// up to whole cache lines, so adjacent threads never false-share.
struct alignas(64) CounterBlock {
  std::array<std::atomic<std::uint64_t>, kNumCounters> v{};
};

/// 256 owned slots + 1 shared overflow slot for any threads beyond that
/// (their adds contend on the overflow block but stay correct).
constexpr std::size_t kOwnedBlocks = 256;
constexpr std::size_t kTotalBlocks = kOwnedBlocks + 1;

struct Registry {
  std::array<CounterBlock, kTotalBlocks> blocks;
  std::atomic<std::size_t> next_slot{0};
};

Registry& registry() {
  // Intentionally leaked singleton: worker threads (the global ThreadPool
  // above all) may still flush counters while function-local statics are
  // being destroyed at exit, so the registry must outlive every thread.
  static Registry* r = new Registry;
  return *r;
}

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
thread_local std::size_t tls_slot = kNoSlot;

}  // namespace

std::string_view to_string(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}

namespace detail {

void counter_add(Counter c, std::uint64_t n) {
  Registry& r = registry();
  if (tls_slot == kNoSlot) {
    // seq_cst fetch_add: runs once per thread; no need to reason about a
    // weaker order.
    tls_slot = std::min(r.next_slot.fetch_add(1), kOwnedBlocks);
  }
  // relaxed: counters are commutative monotonic tallies read by
  // counters_snapshot(), which is advisory by contract while writers are
  // live; no other data is published through them.
  r.blocks[tls_slot].v[static_cast<std::size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

}  // namespace detail

bool set_counters_enabled(bool enabled) {
  // seq_cst exchange: cold toggle, strongest order keeps reasoning trivial.
  return detail::g_counters_enabled.exchange(enabled);
}

bool set_metrics_enabled(bool enabled) {
  // seq_cst exchange: cold toggle, as above.
  return detail::g_metrics_enabled.exchange(enabled);
}

CounterSnapshot counters_snapshot() {
  Registry& r = registry();
  CounterSnapshot snap;
  for (const CounterBlock& block : r.blocks) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      // relaxed: see counter_add — totals are advisory while writers run.
      snap.values[i] += block.v[i].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void reset_counters() {
  Registry& r = registry();
  for (CounterBlock& block : r.blocks) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      // relaxed: reset is documented as racy-by-contract against live
      // producers; snapshot totals remain advisory.
      block.v[i].store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace pmpr::obs
