// Runtime telemetry: fixed-footprint latency histograms (observability
// pillar 4 — distributions, not just means).
//
// The runners' per-window phase durations (build / init / iterate / sink)
// are log-bucketed HDR-style: 8 sub-buckets per power-of-two octave give a
// worst-case relative quantization error of 12.5% across a 1 ns .. ~68 s
// range in 280 fixed buckets per phase. That is what turns "mean window
// time" into the p50/p90/p99/max a regression gate can act on (a scheduler
// stall shows up in p99 long before it moves the mean).
//
// Design (same slot discipline as obs/counters): each recording thread owns
// a cache-line-aligned block of relaxed-atomic bucket counters, claimed on
// first use from a fixed pool; threads beyond the pool share one overflow
// block (contended but correct). Aggregation sums every block; totals are
// advisory while writers are live, exact once they quiesce.
//
// Cost discipline: `record_duration()` is one relaxed load + branch when
// histograms are disabled. Recording happens once per runner *phase* per
// window — never inside kernel loops — so even the enabled path (a couple
// of relaxed adds + a CAS-max) is noise at window granularity.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "obs/trace.hpp"

namespace pmpr::obs {

/// Runner phases whose per-window durations are recorded. Keep
/// kPhaseNames in histogram.cpp in sync.
enum class Phase : std::size_t {
  kBuild = 0,  ///< Window/batch graph-state construction (streaming: mutate).
  kInit,       ///< PageRank vector initialization (full or partial).
  kIterate,    ///< Power iterations to convergence.
  kSink,       ///< Handing the converged vector(s) to the ResultSink.
  kPage,       ///< Out-of-core part map/decode faults (io.page latency).
};
inline constexpr std::size_t kNumPhases = 5;

/// Human-readable snake_case name (stable; used as JSON keys).
[[nodiscard]] std::string_view to_string(Phase p);

/// Bucketing scheme: values 0..7 get exact buckets; beyond that each
/// power-of-two octave splits into 8 sub-buckets. Octaves up to 2^36 ns
/// (~68.7 s) are distinct; larger values clamp into the last bucket.
inline constexpr std::size_t kHistSubBits = 3;
inline constexpr std::size_t kHistMaxExp = 36;
inline constexpr std::size_t kHistNumBuckets =
    (1u << kHistSubBits) +
    (kHistMaxExp - kHistSubBits + 1) * (1u << kHistSubBits);

/// Bucket index for a duration of `ns` nanoseconds. Monotone in `ns`.
[[nodiscard]] std::size_t bucket_index(std::uint64_t ns);

/// Inclusive upper bound of bucket `i` in nanoseconds — the value reported
/// for a percentile that lands in the bucket (so reported percentiles are
/// conservative: never below the true quantile by more than one bucket).
[[nodiscard]] std::uint64_t bucket_upper_ns(std::size_t i);

/// Aggregated distribution of one phase. Plain values — subtract two
/// snapshots (delta_since) to attribute recordings to one run.
struct PhaseHistogram {
  std::array<std::uint64_t, kHistNumBuckets> counts{};
  std::uint64_t sum_ns = 0;
  /// Largest single recording since the last reset_histograms(). NOT
  /// delta-able: delta_since keeps the later snapshot's max (an interval
  /// max cannot be reconstructed from two cumulative maxima).
  std::uint64_t max_ns = 0;

  [[nodiscard]] std::uint64_t total_count() const;
  [[nodiscard]] double mean_ns() const;
  /// Quantile q in [0, 1] (clamped), resolved via
  /// pmpr::percentile_bucket — the tree's one bucket-percentile
  /// implementation — and mapped to the bucket's upper bound. 0 when empty.
  [[nodiscard]] std::uint64_t percentile_ns(double q) const;

  /// Element-wise count/sum difference clamped at zero (concurrent reset
  /// safety, same contract as CounterSnapshot); max_ns from `this`.
  [[nodiscard]] PhaseHistogram delta_since(const PhaseHistogram& base) const;
};

/// Point-in-time aggregate of every phase histogram.
struct HistogramSnapshot {
  std::array<PhaseHistogram, kNumPhases> phases{};

  [[nodiscard]] const PhaseHistogram& operator[](Phase p) const {
    return phases[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] HistogramSnapshot delta_since(
      const HistogramSnapshot& base) const {
    HistogramSnapshot d;
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      d.phases[i] = phases[i].delta_since(base.phases[i]);
    }
    return d;
  }
};

namespace detail {
/// Inline so histograms_enabled() compiles to one load at every call site.
inline std::atomic<bool> g_histograms_enabled{false};
/// Out-of-line slow path: claims this thread's block on first use and adds.
void histogram_record(Phase p, std::uint64_t ns);
}  // namespace detail

/// Whether record_duration() records anything. The single check on the
/// disabled hot path.
[[nodiscard]] inline bool histograms_enabled() {
  // relaxed: an advisory on/off gate — a stale read only delays when
  // recording starts/stops by a few phases; no data is published through
  // this flag.
  return detail::g_histograms_enabled.load(std::memory_order_relaxed);
}

/// Enables/disables histogram recording. Returns the previous setting.
bool set_histograms_enabled(bool enabled);

/// Records one phase duration. Near-zero cost when disabled (one relaxed
/// load). Safe from any thread, including pool workers mid-steal.
inline void record_duration(Phase p, std::uint64_t ns) {
  if (!histograms_enabled()) return;
  detail::histogram_record(p, ns);
}

/// Sums every thread block. Advisory while producers run; exact after they
/// quiesce (e.g. once a runner has returned).
[[nodiscard]] HistogramSnapshot histograms_snapshot();

/// Zeroes every block (counts, sums, maxima). Only meaningful while no
/// producer is mid-flight; concurrent recordings may survive the reset.
void reset_histograms();

/// RAII phase stopwatch: construction reads the clock iff histograms are
/// enabled; destruction records the elapsed nanoseconds. Place one next to
/// the phase's PMPR_TRACE_SPAN — spans feed the timeline, this feeds the
/// distribution.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase p) {
    if (histograms_enabled()) {
      phase_ = p;
      start_ns_ = trace_now_ns();
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() {
    if (start_ns_ >= 0) {
      const std::int64_t elapsed = trace_now_ns() - start_ns_;
      detail::histogram_record(phase_,
                               elapsed > 0
                                   ? static_cast<std::uint64_t>(elapsed)
                                   : 0);
    }
  }

 private:
  Phase phase_ = Phase::kBuild;
  std::int64_t start_ns_ = -1;  ///< -1 = histograms were off at entry.
};

}  // namespace pmpr::obs
