#include "obs/flightrec.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <ostream>

#include "obs/sigsafe.hpp"
#include "obs/trace.hpp"
#include "util/thread_annotations.hpp"

namespace pmpr::obs {

namespace {

constexpr std::array<const char*, kNumFrEvents> kFrEventNames = {
    "span_begin", "span_end",     "window_done",   "task_run",
    "park",       "unpark",       "evict",         "refault",
    "error",      "watchdog_arm", "watchdog_fire", "mark",
};

/// Per-ring capacity. 128 recent events per thread is enough to cover the
/// last few windows of work (each window records ~8 phase edges) while
/// keeping the whole leaked registry around 1.4 MB — and the registry is
/// only allocated once the recorder or crash handler is actually used.
constexpr std::size_t kRingCap = 128;
constexpr std::size_t kLabelLen = 32;
constexpr std::size_t kErrorLen = 128;

/// One ring record. Every field is an individually-relaxed atomic: after
/// the ring wraps a reader may combine fields from two different writes
/// (advisory-by-contract, like counters), but it can never see a torn
/// value — in particular `name` is always either nullptr or a valid
/// pointer to static-storage bytes, which is what makes the crash path's
/// pointer-chasing safe.
struct FrSlot {
  std::atomic<std::int64_t> t_ns{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
  std::atomic<std::uint8_t> kind{0};
};

/// One padded per-thread ring (same slot discipline as counters.cpp).
/// `label` and `error_buf` are plain chars written by the owning thread;
/// cross-thread reads (snapshot, crash handler) are racy-by-contract and
/// see possibly-stale but always NUL-terminated text.
struct alignas(64) FrBlock {
  std::array<FrSlot, kRingCap> ring{};
  std::atomic<std::uint64_t> next{0};      ///< Events ever written here.
  std::atomic<std::uint64_t> consumed{0};  ///< Drained seq (under drain mu).
  char label[kLabelLen] = {};
  char error_buf[kErrorLen] = {};
};

/// 256 owned slots + 1 shared overflow slot (threads beyond the pool
/// contend on the overflow ring's `next` but stay correct).
constexpr std::size_t kOwnedBlocks = 256;
constexpr std::size_t kTotalBlocks = kOwnedBlocks + 1;

struct Registry {
  std::array<FrBlock, kTotalBlocks> blocks;
  std::atomic<std::size_t> next_slot{0};
  std::atomic<std::uint64_t> drains{0};
};

/// Unlike the other pillars' function-local-static registries, this one
/// hangs off a namespace-scope atomic pointer: the crash handler must be
/// able to *load* it without risking a lazy-initialization slow path
/// inside a signal context, and bail when it is null.
std::atomic<Registry*> g_registry{nullptr};

/// Process-wide last-error text for crash reports. Written under the
/// drain mutex on the safe path; the crash handler reads it raw (torn
/// text on a pathological race is acceptable in a best-effort dump).
char g_last_error[kErrorLen + kLabelLen] = {};

Registry* registry_if_exists() {
  // acquire: pairs with the release publication in ensure_registry(), so a
  // non-null pointer implies fully-constructed blocks — the crash handler
  // relies on exactly this.
  return g_registry.load(std::memory_order_acquire);
}

Registry& ensure_registry() {
  // acquire: see registry_if_exists.
  Registry* r = g_registry.load(std::memory_order_acquire);
  if (r != nullptr) return *r;
  // Intentionally leaked (like every obs registry): worker threads may
  // still record while static destructors run at exit, and the crash
  // handler may read it at any point of the process's death.
  Registry* fresh = new Registry;
  Registry* expected = nullptr;
  // acq_rel CAS: release publishes the construction to winners' readers,
  // acquire on failure synchronizes with the thread that won the race.
  if (g_registry.compare_exchange_strong(expected, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
    return *fresh;
  }
  delete fresh;  // lost the installation race
  return *expected;
}

/// Serializes drain/clear (the drain-exactly-once contract) and the
/// global last-error copy. Leaked for the same exit-order reason as the
/// registry.
Mutex& drain_mu() {
  static Mutex* mu = new Mutex;
  return *mu;
}

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
thread_local std::size_t tls_slot = kNoSlot;

FrBlock& my_block() {
  Registry& r = ensure_registry();
  if (tls_slot == kNoSlot) {
    // seq_cst fetch_add: runs once per thread; no need to reason about a
    // weaker order.
    tls_slot = std::min(r.next_slot.fetch_add(1), kOwnedBlocks);
  }
  return r.blocks[tls_slot];
}

std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

/// Blocks ever claimed (the shared overflow block counts once).
std::size_t claimed_blocks(const Registry& r) {
  // seq_cst load of a cold gauge; mirrors the claim in my_block.
  return std::min(r.next_slot.load(), kTotalBlocks);
}

/// Copies the window [start, next) of one ring into `out`.
void copy_ring(const FrBlock& blk, std::uint32_t tid, std::uint64_t start,
               std::uint64_t next, std::vector<FlightEvent>& out) {
  for (std::uint64_t seq = start; seq < next; ++seq) {
    const FrSlot& s = blk.ring[seq % kRingCap];
    FlightEvent e;
    // relaxed loads: ring snapshots are advisory-by-contract while
    // writers are live (see flightrec.hpp); exact after quiesce.
    e.t_ns = s.t_ns.load(std::memory_order_relaxed);
    e.tid = tid;
    const std::uint8_t k = s.kind.load(std::memory_order_relaxed);
    e.kind = static_cast<FrEvent>(
        std::min<std::uint8_t>(k, kNumFrEvents - 1));
    const char* nm = s.name.load(std::memory_order_relaxed);  // relaxed: ditto
    if (nm != nullptr) e.name = nm;
    e.a = s.a.load(std::memory_order_relaxed);  // relaxed: ditto
    e.b = s.b.load(std::memory_order_relaxed);  // relaxed: ditto
    out.push_back(std::move(e));
  }
}

void sort_by_time(std::vector<FlightEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.t_ns != y.t_ns ? x.t_ns < y.t_ns
                                             : x.tid < y.tid;
                   });
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

}  // namespace

const char* to_string(FrEvent e) {
  return kFrEventNames[static_cast<std::size_t>(e)];
}

namespace detail {

void fr_add(FrEvent kind, const char* name, std::uint64_t a,
            std::uint64_t b) {
  FrBlock& blk = my_block();
  // seq_cst fetch_add claims the slot; only the shared overflow block
  // ever contends on it (owned rings have a single writer), and the
  // recording rate is per-phase, not per-edge — cold enough for the
  // strongest order.
  const std::uint64_t seq = blk.next.fetch_add(1);
  FrSlot& s = blk.ring[seq % kRingCap];
  // relaxed stores: each field is individually atomic, readers tolerate
  // mixed-write records after a wrap (advisory-by-contract, see header),
  // and `name` only ever points to static storage.
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);  // relaxed: ditto
  s.t_ns.store(trace_now_ns(), std::memory_order_relaxed);  // relaxed: ditto
}

}  // namespace detail

bool set_flight_recorder_enabled(bool enabled) {
  if (enabled) {
    ensure_registry();  // allocate the rings before the first record
  }
  // seq_cst exchange: cold toggle, strongest order keeps reasoning trivial.
  return detail::g_flight_recorder_enabled.exchange(enabled);
}

void fr_record_error(const char* what) {
  if (!flight_recorder_enabled()) return;
  if (what == nullptr) what = "(unknown error)";
  FrBlock& blk = my_block();
  std::size_t n = 0;
  for (; n + 1 < kErrorLen && what[n] != '\0'; ++n) blk.error_buf[n] = what[n];
  blk.error_buf[n] = '\0';
  {
    // The global last-error copy is shared across threads; the drain
    // mutex serializes safe-path writers (the crash handler reads raw).
    LockGuard lock(drain_mu());
    std::size_t m = 0;
    for (; m + 1 < sizeof(g_last_error) && what[m] != '\0'; ++m) {
      g_last_error[m] = what[m];
    }
    g_last_error[m] = '\0';
  }
  fr_record(FrEvent::kError, blk.error_buf);
}

void fr_set_thread_label(std::string_view label) {
  FrBlock& blk = my_block();
  const std::size_t n = std::min(label.size(), kLabelLen - 1);
  for (std::size_t i = 0; i < n; ++i) blk.label[i] = label[i];
  blk.label[n] = '\0';
}

std::vector<FlightEvent> snapshot_flight_recorder() {
  std::vector<FlightEvent> out;
  Registry* r = registry_if_exists();
  if (r == nullptr) return out;
  const std::size_t nblocks = claimed_blocks(*r);
  for (std::size_t i = 0; i < nblocks; ++i) {
    const FrBlock& blk = r->blocks[i];
    // relaxed: advisory snapshot, see copy_ring.
    const std::uint64_t next = blk.next.load(std::memory_order_relaxed);
    copy_ring(blk, static_cast<std::uint32_t>(i),
              sat_sub(next, kRingCap), next, out);
  }
  sort_by_time(out);
  return out;
}

std::vector<FlightEvent> drain_flight_recorder() {
  std::vector<FlightEvent> out;
  Registry* r = registry_if_exists();
  if (r == nullptr) return out;
  // The drain mutex is what makes "each event drained exactly once" hold
  // under concurrent drains: `consumed` is only advanced here.
  LockGuard lock(drain_mu());
  const std::size_t nblocks = claimed_blocks(*r);
  for (std::size_t i = 0; i < nblocks; ++i) {
    FrBlock& blk = r->blocks[i];
    // relaxed: advisory while writers are live; events recorded after
    // this load land in the next drain.
    const std::uint64_t next = blk.next.load(std::memory_order_relaxed);
    // relaxed: consumed is only mutated under drain_mu (held here).
    const std::uint64_t consumed =
        blk.consumed.load(std::memory_order_relaxed);
    const std::uint64_t start = std::max(consumed, sat_sub(next, kRingCap));
    copy_ring(blk, static_cast<std::uint32_t>(i), start, next, out);
    // relaxed: published to other drainers via drain_mu, not this store.
    blk.consumed.store(next, std::memory_order_relaxed);
  }
  // seq_cst add of a cold stat.
  r->drains.fetch_add(1);
  sort_by_time(out);
  return out;
}

void clear_flight_recorder() {
  Registry* r = registry_if_exists();
  if (r == nullptr) return;
  LockGuard lock(drain_mu());
  const std::size_t nblocks = claimed_blocks(*r);
  for (std::size_t i = 0; i < nblocks; ++i) {
    FrBlock& blk = r->blocks[i];
    for (FrSlot& s : blk.ring) {
      // relaxed: clear is racy-by-contract against live producers (like
      // reset_counters); totals stay advisory.
      s.t_ns.store(0, std::memory_order_relaxed);
      s.name.store(nullptr, std::memory_order_relaxed);
      s.a.store(0, std::memory_order_relaxed);
      s.b.store(0, std::memory_order_relaxed);     // relaxed: ditto
      s.kind.store(0, std::memory_order_relaxed);  // relaxed: ditto
    }
    // relaxed: same racy-by-contract reset.
    blk.next.store(0, std::memory_order_relaxed);
    blk.consumed.store(0, std::memory_order_relaxed);
  }
  // seq_cst store of a cold stat.
  r->drains.store(0);
  g_last_error[0] = '\0';
}

FlightRecorderStats flight_recorder_stats() {
  FlightRecorderStats stats;
  Registry* r = registry_if_exists();
  if (r == nullptr) return stats;
  const std::size_t nblocks = claimed_blocks(*r);
  stats.threads = nblocks;
  // seq_cst load of a cold stat.
  stats.drains = r->drains.load();
  for (std::size_t i = 0; i < nblocks; ++i) {
    const FrBlock& blk = r->blocks[i];
    // relaxed: advisory totals, see counters_snapshot for the argument.
    const std::uint64_t next = blk.next.load(std::memory_order_relaxed);
    const std::uint64_t consumed =
        blk.consumed.load(std::memory_order_relaxed);
    stats.records += next;
    stats.dropped += sat_sub(sat_sub(next, kRingCap), consumed);
  }
  return stats;
}

std::string last_error() {
  LockGuard lock(drain_mu());
  return std::string(g_last_error);
}

void write_blackbox_json(std::ostream& out) {
  const FlightRecorderStats stats = flight_recorder_stats();
  const std::vector<FlightEvent> events = snapshot_flight_recorder();
  out << "{\n";
  out << "  \"schema\": \"pmpr-blackbox-v1\",\n";
  out << "  \"ring_capacity\": " << kRingCap << ",\n";
  out << "  \"stats\": {\"records\": " << stats.records
      << ", \"dropped\": " << stats.dropped
      << ", \"drains\": " << stats.drains
      << ", \"threads\": " << stats.threads << "},\n";
  out << "  \"last_error\": \"" << escape_json(last_error()) << "\",\n";
  out << "  \"threads\": [\n";
  Registry* r = registry_if_exists();
  const std::size_t nblocks = r != nullptr ? claimed_blocks(*r) : 0;
  for (std::size_t i = 0; i < nblocks; ++i) {
    const FrBlock& blk = r->blocks[i];
    // relaxed: advisory gauge.
    const std::uint64_t next = blk.next.load(std::memory_order_relaxed);
    out << "    {\"tid\": " << i << ", \"label\": \""
        << escape_json(blk.label) << "\", \"records\": " << next << "}"
        << (i + 1 < nblocks ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"events\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    out << "    {\"t_ns\": " << e.t_ns << ", \"tid\": " << e.tid
        << ", \"kind\": \"" << to_string(e.kind) << "\", \"name\": \""
        << escape_json(e.name) << "\", \"a\": " << e.a << ", \"b\": " << e.b
        << "}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

bool write_blackbox_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_blackbox_json(out);
  return static_cast<bool>(out);
}

// --- async-signal-safe emitters ----------------------------------------
//
// Called from obs/crash.cpp's signal handler. Only atomic loads on the
// pre-allocated registry plus the sigsafe.hpp write(2) helpers — the lint
// rule `signal-unsafe-in-handler` patrols these regions.

// PMPR_ASYNC_SIGNAL_SAFE_BEGIN

std::uint64_t fr_emit_events_json(int fd) {
  sigsafe_puts(fd, "[");
  // acquire: a non-null registry pointer implies constructed blocks.
  Registry* r = g_registry.load(std::memory_order_acquire);
  std::uint64_t emitted = 0;
  if (r != nullptr) {
    // seq_cst load of a cold gauge (claimed_blocks inlined: no helpers
    // that might allocate are called from here).
    const std::size_t nblocks = std::min(r->next_slot.load(), kTotalBlocks);
    for (std::size_t i = 0; i < nblocks; ++i) {
      const FrBlock& blk = r->blocks[i];
      // relaxed: advisory ring window, as on the safe path.
      const std::uint64_t next = blk.next.load(std::memory_order_relaxed);
      const std::uint64_t count =
          next > kRingCap ? kRingCap : next;
      for (std::uint64_t seq = next - count; seq < next; ++seq) {
        const FrSlot& s = blk.ring[seq % kRingCap];
        // relaxed loads: advisory records, never torn per-field.
        const std::int64_t t = s.t_ns.load(std::memory_order_relaxed);
        std::uint8_t k = s.kind.load(std::memory_order_relaxed);
        if (k >= kNumFrEvents) k = kNumFrEvents - 1;
        const char* nm = s.name.load(std::memory_order_relaxed);  // ditto
        const std::uint64_t a = s.a.load(std::memory_order_relaxed);  // ditto
        const std::uint64_t b = s.b.load(std::memory_order_relaxed);  // ditto
        if (emitted != 0) sigsafe_puts(fd, ",");
        sigsafe_puts(fd, "\n    {\"t_ns\": ");
        sigsafe_put_i64(fd, t);
        sigsafe_puts(fd, ", \"tid\": ");
        sigsafe_put_u64(fd, i);
        sigsafe_puts(fd, ", \"kind\": \"");
        sigsafe_puts(fd, kFrEventNames[k]);
        sigsafe_puts(fd, "\", \"name\": \"");
        sigsafe_put_json_str(fd, nm != nullptr ? nm : "");
        sigsafe_puts(fd, "\", \"a\": ");
        sigsafe_put_u64(fd, a);
        sigsafe_puts(fd, ", \"b\": ");
        sigsafe_put_u64(fd, b);
        sigsafe_puts(fd, "}");
        ++emitted;
      }
    }
  }
  sigsafe_puts(fd, emitted != 0 ? "\n  ]" : "]");
  return emitted;
}

void fr_emit_threads_json(int fd) {
  sigsafe_puts(fd, "[");
  // acquire: see fr_emit_events_json.
  Registry* r = g_registry.load(std::memory_order_acquire);
  if (r != nullptr) {
    // seq_cst load of a cold gauge.
    const std::size_t nblocks = std::min(r->next_slot.load(), kTotalBlocks);
    for (std::size_t i = 0; i < nblocks; ++i) {
      const FrBlock& blk = r->blocks[i];
      if (i != 0) sigsafe_puts(fd, ",");
      sigsafe_puts(fd, "\n    {\"tid\": ");
      sigsafe_put_u64(fd, i);
      sigsafe_puts(fd, ", \"label\": \"");
      sigsafe_put_json_str(fd, blk.label);
      sigsafe_puts(fd, "\", \"records\": ");
      // relaxed: advisory gauge.
      sigsafe_put_u64(fd, blk.next.load(std::memory_order_relaxed));
      sigsafe_puts(fd, "}");
    }
    if (nblocks != 0) sigsafe_puts(fd, "\n  ");
  }
  sigsafe_puts(fd, "]");
}

void fr_emit_last_error_json(int fd) { sigsafe_put_json_str(fd, g_last_error); }

// PMPR_ASYNC_SIGNAL_SAFE_END

void fr_prewarm() { ensure_registry(); }

}  // namespace pmpr::obs
