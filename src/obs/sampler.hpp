// Runtime telemetry: background scheduler sampling profiler (observability
// pillar 5 — *why* was a window slow, not just *that* it was).
//
// A Sampler owns one background thread that periodically snapshots the
// work-stealing scheduler: per-worker deque depths, parked-worker count,
// steal success rate (from counter deltas between ticks), and coarse
// progress gauges (lanes converged, windows processed). Samples land in a
// fixed-capacity ring buffer; running accumulators cover the whole run even
// after the ring wraps. When tracing is enabled, each tick also emits
// Chrome "ph":"C" counter events so Perfetto draws queue-depth/parked
// area charts under the span timeline.
//
// Cost discipline: one tick is O(num_workers) relaxed loads plus one
// counters_snapshot() — microseconds of work every `interval` (default
// 10 ms), well under 0.1% of one core. The sampled pool pays nothing
// beyond the advisory gauge reads (ThreadPool::approx_queued and friends).
//
// Lifetime: the Sampler must not outlive the pool it samples. stop() (or
// the destructor) joins the thread; it is prompt because the loop waits on
// an interruptible condvar, never a bare sleep.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/scheduler_probe.hpp"
#include "util/thread_annotations.hpp"

namespace pmpr::obs {

struct SamplerOptions {
  /// Tick period. 10 ms resolves per-window scheduling behavior for the
  /// paper's workloads without measurable overhead.
  std::chrono::milliseconds interval{10};
  /// Ring capacity: the most recent samples kept for samples()/the trace.
  /// Older ticks still count toward summary() accumulators.
  std::size_t ring_capacity = 4096;
  /// Also emit "ph":"C" trace counter events per tick (only while
  /// obs::tracing_enabled()).
  bool emit_trace_counters = true;
};

/// One scheduler snapshot.
struct SamplerSample {
  std::int64_t t_ns = 0;               ///< trace_now_ns() at the tick.
  std::uint64_t total_queued = 0;      ///< Deques + injection queue.
  std::uint64_t max_worker_depth = 0;  ///< Deepest single worker deque.
  std::uint64_t parked_workers = 0;
  /// Steals succeeded / attempted since the previous tick; 0 when no
  /// attempts happened (or counters are disabled).
  double steal_success_rate = 0.0;
  std::uint64_t lanes_converged = 0;    ///< Cumulative counter value.
  std::uint64_t windows_processed = 0;  ///< Cumulative counter value.
};

/// Whole-run aggregate (exact even when the ring wrapped).
struct SamplerSummary {
  std::uint64_t num_samples = 0;
  std::uint64_t interval_ms = 0;
  double mean_total_queued = 0.0;
  std::uint64_t max_total_queued = 0;
  double mean_parked_workers = 0.0;
  std::uint64_t max_parked_workers = 0;
  /// Mean of per-tick rates over ticks that saw steal attempts.
  double mean_steal_success_rate = 0.0;
};

class Sampler {
 public:
  /// Does not start sampling; call start(). `pool` (any SchedulerProbe —
  /// in practice a par::ThreadPool) must outlive `*this`.
  explicit Sampler(SchedulerProbe& pool, SamplerOptions opts = {});
  ~Sampler();  ///< Stops and joins if still running.

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Launches the background thread. No-op if already running.
  void start();

  /// Signals the thread and joins it. No-op if not running. Prompt: the
  /// loop parks on a condvar, so stop never waits a full interval.
  /// Idempotent and safe to race from several threads — the joinable
  /// handle is swapped out under the lock, so exactly one caller joins
  /// (the trace-exporter shutdown path stops the sampler while
  /// write_metrics_json may be flushing concurrently).
  void stop();

  [[nodiscard]] bool running() const;

  /// Takes one snapshot synchronously on the calling thread (also what the
  /// background loop does per tick). Usable with the thread stopped — e.g.
  /// tests, or one final sample after a run drains.
  SamplerSample sample_once();

  /// Copies out the ring (oldest first). Safe while running.
  [[nodiscard]] std::vector<SamplerSample> samples() const;

  /// Whole-run aggregate. Safe while running.
  [[nodiscard]] SamplerSummary summary() const;

 private:
  void loop();
  void record(const SamplerSample& s);

  SchedulerProbe& pool_;
  const SamplerOptions opts_;

  mutable Mutex mu_;
  CondVar wake_cv_;
  bool stop_requested_ PMPR_GUARDED_BY(mu_) = false;
  std::vector<SamplerSample> ring_ PMPR_GUARDED_BY(mu_);
  std::size_t ring_next_ PMPR_GUARDED_BY(mu_) = 0;  ///< Next overwrite slot.
  std::uint64_t num_samples_ PMPR_GUARDED_BY(mu_) = 0;
  double sum_total_queued_ PMPR_GUARDED_BY(mu_) = 0.0;
  std::uint64_t max_total_queued_ PMPR_GUARDED_BY(mu_) = 0;
  double sum_parked_ PMPR_GUARDED_BY(mu_) = 0.0;
  std::uint64_t max_parked_ PMPR_GUARDED_BY(mu_) = 0;
  double sum_steal_rate_ PMPR_GUARDED_BY(mu_) = 0.0;
  std::uint64_t ticks_with_steals_ PMPR_GUARDED_BY(mu_) = 0;

  /// Previous-tick counter values for steal-rate deltas. Only touched by
  /// whoever calls sample_once(), which is the loop thread while running
  /// (callers must not race sample_once with a live loop).
  std::uint64_t last_steals_attempted_ = 0;
  std::uint64_t last_steals_succeeded_ = 0;
  bool have_last_counters_ = false;

  std::thread thread_ PMPR_GUARDED_BY(mu_);
};

}  // namespace pmpr::obs
