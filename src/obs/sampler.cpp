#include "obs/sampler.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "obs/memory.hpp"
#include "obs/trace.hpp"

namespace pmpr::obs {

Sampler::Sampler(SchedulerProbe& pool, SamplerOptions opts)
    : pool_(pool), opts_(opts) {}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  LockGuard lock(mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() {
  // Swap-join: move the handle out under the lock so concurrent stop()
  // calls are idempotent (exactly one caller sees a joinable handle), then
  // join outside the lock — the loop needs mu_ to observe stop_requested_.
  std::thread t;
  {
    LockGuard lock(mu_);
    stop_requested_ = true;
    wake_cv_.notify_all();
    t.swap(thread_);
  }
  if (t.joinable()) t.join();
}

bool Sampler::running() const {
  LockGuard lock(mu_);
  return thread_.joinable();
}

SamplerSample Sampler::sample_once() {
  SamplerSample s;
  s.t_ns = trace_now_ns();
  std::uint64_t total = 0;
  std::uint64_t deepest = 0;
  for (std::size_t i = 0; i < pool_.num_workers(); ++i) {
    const std::uint64_t d = pool_.approx_queued(i);
    total += d;
    deepest = std::max(deepest, d);
  }
  // approx_total_queued also counts the injection queue; per-deque sums
  // above only feed max_worker_depth.
  s.total_queued = pool_.approx_total_queued();
  s.max_worker_depth = deepest;
  s.parked_workers = pool_.parked_workers();

  const CounterSnapshot snap = counters_snapshot();
  const std::uint64_t attempted = snap[Counter::kStealsAttempted];
  const std::uint64_t succeeded = snap[Counter::kStealsSucceeded];
  if (have_last_counters_) {
    const std::uint64_t da =
        attempted >= last_steals_attempted_ ? attempted - last_steals_attempted_
                                            : 0;
    const std::uint64_t ds =
        succeeded >= last_steals_succeeded_ ? succeeded - last_steals_succeeded_
                                            : 0;
    s.steal_success_rate =
        da == 0 ? 0.0
                : static_cast<double>(std::min(ds, da)) /
                      static_cast<double>(da);
  }
  last_steals_attempted_ = attempted;
  last_steals_succeeded_ = succeeded;
  have_last_counters_ = true;
  s.lanes_converged = snap[Counter::kLanesConverged];
  s.windows_processed = snap[Counter::kWindowsProcessed];

  record(s);
  count(Counter::kSamplerTicks);
  if (opts_.emit_trace_counters && tracing_enabled()) {
    record_counter_sample("sched.total_queued", s.t_ns,
                          static_cast<double>(s.total_queued));
    record_counter_sample("sched.max_worker_depth", s.t_ns,
                          static_cast<double>(s.max_worker_depth));
    record_counter_sample("sched.parked_workers", s.t_ns,
                          static_cast<double>(s.parked_workers));
    record_counter_sample("sched.steal_success_rate", s.t_ns,
                          s.steal_success_rate);
    record_counter_sample("progress.windows_processed", s.t_ns,
                          static_cast<double>(s.windows_processed));
    // Memory pillar tracks: process RSS and the per-tag live charges on
    // every tick; the oocore residency/budget pair only while a paged
    // store's probe is registered, so Perfetto charts the paging policy
    // honoring the cap over time.
    record_counter_sample("mem.rss", s.t_ns,
                          static_cast<double>(current_rss_bytes()));
    const MemorySnapshot mem = memory_snapshot();
    for (std::size_t i = 0; i < kNumMemTags; ++i) {
      record_counter_sample(trace_track_name(static_cast<MemTag>(i)), s.t_ns,
                            static_cast<double>(mem.tags[i].live_bytes));
    }
    std::uint64_t oocore_resident = 0;
    std::uint64_t oocore_budget = 0;
    if (probed_residency(&oocore_resident, &oocore_budget)) {
      record_counter_sample("mem.oocore_resident", s.t_ns,
                            static_cast<double>(oocore_resident));
      record_counter_sample("mem.budget", s.t_ns,
                            static_cast<double>(oocore_budget));
    }
  }
  return s;
}

void Sampler::record(const SamplerSample& s) {
  LockGuard lock(mu_);
  if (opts_.ring_capacity > 0) {
    if (ring_.size() < opts_.ring_capacity) {
      ring_.push_back(s);
    } else {
      ring_[ring_next_] = s;
      ring_next_ = (ring_next_ + 1) % opts_.ring_capacity;
    }
  }
  ++num_samples_;
  sum_total_queued_ += static_cast<double>(s.total_queued);
  max_total_queued_ = std::max(max_total_queued_, s.total_queued);
  sum_parked_ += static_cast<double>(s.parked_workers);
  max_parked_ = std::max(max_parked_, s.parked_workers);
  if (s.steal_success_rate > 0.0) {
    sum_steal_rate_ += s.steal_success_rate;
    ++ticks_with_steals_;
  }
}

void Sampler::loop() {
  set_thread_name("obs.sampler");
  // Sample before the first stop check: even a stop() that races the thread
  // spawn yields one snapshot, so short runs are never blind.
  for (;;) {
    sample_once();
    LockGuard lock(mu_);
    if (stop_requested_) return;
    // Interruptible pacing: stop() flips stop_requested_ under mu_ and
    // notifies, so shutdown never waits out a full interval.
    wake_cv_.wait_for(lock, opts_.interval);
  }
}

std::vector<SamplerSample> Sampler::samples() const {
  LockGuard lock(mu_);
  std::vector<SamplerSample> out;
  out.reserve(ring_.size());
  // Oldest-first: the ring wraps at ring_next_ once full.
  if (ring_.size() == opts_.ring_capacity && opts_.ring_capacity > 0) {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
    }
  } else {
    out = ring_;
  }
  return out;
}

SamplerSummary Sampler::summary() const {
  LockGuard lock(mu_);
  SamplerSummary sum;
  sum.num_samples = num_samples_;
  sum.interval_ms = static_cast<std::uint64_t>(opts_.interval.count());
  if (num_samples_ > 0) {
    sum.mean_total_queued =
        sum_total_queued_ / static_cast<double>(num_samples_);
    sum.mean_parked_workers = sum_parked_ / static_cast<double>(num_samples_);
  }
  sum.max_total_queued = max_total_queued_;
  sum.max_parked_workers = max_parked_;
  if (ticks_with_steals_ > 0) {
    sum.mean_steal_success_rate =
        sum_steal_rate_ / static_cast<double>(ticks_with_steals_);
  }
  return sum;
}

}  // namespace pmpr::obs
