#include "obs/watchdog.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <utility>

#include "obs/crash.hpp"
#include "obs/sigsafe.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace pmpr::obs {

namespace {

constexpr std::size_t kLabelLen = 32;

/// One padded per-thread heartbeat slot. `label` is plain chars written
/// by the owning thread; cross-thread reads are racy-by-contract (always
/// NUL-terminated, possibly stale) — same discipline as the flight
/// recorder's ring labels.
struct alignas(64) BeatSlot {
  std::atomic<std::int64_t> t_ns{0};       ///< Last beat (trace_now_ns).
  std::atomic<const char*> phase{nullptr}; ///< Literal; nullptr = idle.
  std::atomic<std::uint64_t> beats{0};
  char label[kLabelLen] = {};
};

constexpr std::size_t kOwnedBlocks = 256;
constexpr std::size_t kTotalBlocks = kOwnedBlocks + 1;

struct Registry {
  std::array<BeatSlot, kTotalBlocks> slots;
  std::atomic<std::size_t> next_slot{0};
};

/// Same crash-path-friendly shape as the flight recorder registry: a
/// namespace-scope atomic pointer the signal handler can load (and bail
/// on null) without risking lazy construction in signal context.
std::atomic<Registry*> g_registry{nullptr};

Registry* registry_if_exists() {
  // acquire: pairs with the release publication in ensure_registry; a
  // non-null pointer implies fully-constructed slots.
  return g_registry.load(std::memory_order_acquire);
}

Registry& ensure_registry() {
  // acquire: see registry_if_exists.
  Registry* r = g_registry.load(std::memory_order_acquire);
  if (r != nullptr) return *r;
  // Intentionally leaked: threads may still beat during static
  // destruction, and the crash handler may read at any time.
  Registry* fresh = new Registry;
  Registry* expected = nullptr;
  // acq_rel CAS: release publishes construction; acquire on failure
  // synchronizes with the winning installer.
  if (g_registry.compare_exchange_strong(expected, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
    return *fresh;
  }
  delete fresh;  // lost the installation race
  return *expected;
}

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
thread_local std::size_t tls_slot = kNoSlot;

BeatSlot& my_slot() {
  Registry& r = ensure_registry();
  if (tls_slot == kNoSlot) {
    // seq_cst fetch_add: runs once per thread; no need to reason about a
    // weaker order.
    tls_slot = std::min(r.next_slot.fetch_add(1), kOwnedBlocks);
  }
  return r.slots[tls_slot];
}

std::size_t claimed_slots(const Registry& r) {
  // seq_cst load of a cold gauge; mirrors the claim in my_slot.
  return std::min(r.next_slot.load(), kTotalBlocks);
}

// Process-wide watchdog totals (all Watchdog instances feed them; the
// metrics writer and crash reports read them).
std::atomic<std::uint64_t> g_arms{0};
std::atomic<std::uint64_t> g_fires{0};
std::atomic<std::int64_t> g_max_age_ns{0};
/// Points at a phase literal (static storage), so crash-path reads are
/// always dereferenceable.
std::atomic<const char*> g_last_stalled_phase{nullptr};

std::int64_t to_ns(std::chrono::milliseconds ms) {
  return static_cast<std::int64_t>(ms.count()) * 1000000;
}

}  // namespace

namespace detail {

void heartbeat_slow(const char* phase) {
  BeatSlot& slot = my_slot();
  // relaxed: heartbeat fields are advisory monitor-read state — the
  // watchdog tolerates a stale (phase, t_ns) pairing for one tick, and
  // `phase` only ever points to static storage.
  slot.t_ns.store(trace_now_ns(), std::memory_order_relaxed);
  slot.phase.store(phase, std::memory_order_relaxed);  // relaxed: ditto
  slot.beats.fetch_add(1, std::memory_order_relaxed);  // relaxed: ditto
}

void heartbeat_idle_slow() {
  // relaxed: advisory retirement; a one-tick-stale idle flag only delays
  // the slot leaving the stall scan.
  my_slot().phase.store(nullptr, std::memory_order_relaxed);
}

}  // namespace detail

bool set_heartbeats_enabled(bool enabled) {
  if (enabled) {
    ensure_registry();  // allocate the slots before the first beat
  }
  // seq_cst exchange: cold toggle, strongest order keeps reasoning trivial.
  return detail::g_heartbeats_enabled.exchange(enabled);
}

void heartbeat_set_label(std::string_view label) {
  BeatSlot& slot = my_slot();
  const std::size_t n = std::min(label.size(), kLabelLen - 1);
  for (std::size_t i = 0; i < n; ++i) slot.label[i] = label[i];
  slot.label[n] = '\0';
}

std::vector<HeartbeatView> heartbeat_table() {
  std::vector<HeartbeatView> out;
  Registry* r = registry_if_exists();
  if (r == nullptr) return out;
  const std::int64_t now = trace_now_ns();
  const std::size_t n = claimed_slots(*r);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const BeatSlot& slot = r->slots[i];
    HeartbeatView v;
    v.tid = static_cast<std::uint32_t>(i);
    v.label = slot.label;
    // relaxed: advisory monitor reads, see heartbeat_slow.
    const char* phase = slot.phase.load(std::memory_order_relaxed);
    const std::int64_t t = slot.t_ns.load(std::memory_order_relaxed);
    v.beats = slot.beats.load(std::memory_order_relaxed);  // relaxed: ditto
    if (phase != nullptr) {
      v.phase = phase;
      v.age_ns = t > 0 && now > t ? now - t : 0;
    }
    out.push_back(std::move(v));
  }
  return out;
}

WatchdogStats watchdog_stats() {
  WatchdogStats stats;
  // seq_cst loads of cold stats.
  stats.arms = g_arms.load();
  stats.fires = g_fires.load();
  stats.max_heartbeat_age_ns = g_max_age_ns.load();
  const char* phase = g_last_stalled_phase.load();
  if (phase != nullptr) stats.last_stalled_phase = phase;
  return stats;
}

void reset_watchdog_stats() {
  // seq_cst stores: test-only reset of cold stats.
  g_arms.store(0);
  g_fires.store(0);
  g_max_age_ns.store(0);
  g_last_stalled_phase.store(nullptr);
}

// PMPR_ASYNC_SIGNAL_SAFE_BEGIN

void watchdog_emit_heartbeats_json(int fd) {
  sigsafe_puts(fd, "[");
  // acquire: a non-null registry pointer implies constructed slots.
  Registry* r = g_registry.load(std::memory_order_acquire);
  if (r != nullptr) {
    const std::int64_t now = trace_now_ns();
    // seq_cst load of a cold gauge.
    const std::size_t n = std::min(r->next_slot.load(), kTotalBlocks);
    for (std::size_t i = 0; i < n; ++i) {
      const BeatSlot& slot = r->slots[i];
      // relaxed: advisory monitor reads, see heartbeat_slow.
      const char* phase = slot.phase.load(std::memory_order_relaxed);
      const std::int64_t t = slot.t_ns.load(std::memory_order_relaxed);
      const std::uint64_t beats =
          slot.beats.load(std::memory_order_relaxed);  // relaxed: ditto
      if (i != 0) sigsafe_puts(fd, ",");
      sigsafe_puts(fd, "\n    {\"tid\": ");
      sigsafe_put_u64(fd, i);
      sigsafe_puts(fd, ", \"label\": \"");
      sigsafe_put_json_str(fd, slot.label);
      sigsafe_puts(fd, "\", \"phase\": \"");
      sigsafe_put_json_str(fd, phase != nullptr ? phase : "");
      sigsafe_puts(fd, "\", \"age_ns\": ");
      sigsafe_put_i64(fd,
                      phase != nullptr && t > 0 && now > t ? now - t : 0);
      sigsafe_puts(fd, ", \"beats\": ");
      sigsafe_put_u64(fd, beats);
      sigsafe_puts(fd, "}");
    }
    if (n != 0) sigsafe_puts(fd, "\n  ");
  }
  sigsafe_puts(fd, "]");
}

// PMPR_ASYNC_SIGNAL_SAFE_END

void watchdog_prewarm() { ensure_registry(); }

Watchdog::Watchdog(WatchdogOptions opts) : opts_(std::move(opts)) {}

Watchdog::~Watchdog() { stop(); }

std::chrono::milliseconds Watchdog::effective_interval() const {
  std::chrono::milliseconds interval = opts_.check_interval;
  if (interval.count() <= 0) interval = opts_.stall_threshold / 4;
  interval = std::min(interval, opts_.stall_threshold);
  return std::max(interval, std::chrono::milliseconds(1));
}

void Watchdog::start() {
  LockGuard lock(mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  prev_heartbeats_ = set_heartbeats_enabled(true);
  watchdog_prewarm();
  // seq_cst add of a cold stat.
  g_arms.fetch_add(1);
  fr_record(FrEvent::kWatchdogArm, "watchdog",
            static_cast<std::uint64_t>(to_ns(opts_.stall_threshold)));
  thread_ = std::thread([this] { loop(); });
}

void Watchdog::stop() {
  std::thread t;
  bool restore = false;
  {
    LockGuard lock(mu_);
    stop_requested_ = true;
    wake_cv_.notify_all();
    if (thread_.joinable()) {
      t.swap(thread_);
      restore = prev_heartbeats_;
    }
  }
  // Join outside the lock (the monitor takes mu_ per tick); only the one
  // caller that swapped the handle out joins, so concurrent stops are
  // safe and idempotent.
  if (t.joinable()) {
    t.join();
    set_heartbeats_enabled(restore);
  }
}

bool Watchdog::running() const {
  LockGuard lock(mu_);
  return thread_.joinable();
}

bool Watchdog::check_once() {
  Registry* r = registry_if_exists();
  if (r == nullptr) return false;
  const std::int64_t now = trace_now_ns();
  const char* worst_phase = nullptr;
  std::uint32_t worst_tid = 0;
  std::int64_t worst_age = 0;
  std::uint64_t total_beats = 0;
  const std::size_t n = claimed_slots(*r);
  for (std::size_t i = 0; i < n; ++i) {
    const BeatSlot& slot = r->slots[i];
    // relaxed: advisory monitor reads, see heartbeat_slow.
    total_beats += slot.beats.load(std::memory_order_relaxed);
    const char* phase = slot.phase.load(std::memory_order_relaxed);
    const std::int64_t t =
        slot.t_ns.load(std::memory_order_relaxed);  // relaxed: ditto
    if (phase == nullptr || t <= 0 || now <= t) continue;
    const std::int64_t age = now - t;
    if (age > worst_age) {
      worst_age = age;
      worst_phase = phase;
      worst_tid = static_cast<std::uint32_t>(i);
    }
  }
  // seq_cst CAS-max watermark on a cold stat.
  std::int64_t seen = g_max_age_ns.load();
  while (worst_age > seen &&
         !g_max_age_ns.compare_exchange_weak(seen, worst_age)) {
  }
  // Any progress since the last fire re-arms the episode: a continuing
  // stall with zero beats is the same incident and must not refire every
  // tick.
  if (total_beats != beats_at_last_fire_) fired_since_progress_ = false;
  if (worst_phase == nullptr || worst_age <= to_ns(opts_.stall_threshold)) {
    return false;
  }
  if (fired_since_progress_) return false;
  fire(worst_phase, worst_tid, worst_age, total_beats);
  return true;
}

void Watchdog::fire(const char* phase, std::uint32_t tid,
                    std::int64_t age_ns, std::uint64_t total_beats) {
  fired_since_progress_ = true;
  beats_at_last_fire_ = total_beats;
  // relaxed: advisory per-instance gauge read by fires().
  fires_.fetch_add(1, std::memory_order_relaxed);
  // seq_cst stores/adds of cold stats (phase points to a literal).
  g_fires.fetch_add(1);
  g_last_stalled_phase.store(phase);
  fr_record(FrEvent::kWatchdogFire, phase,
            static_cast<std::uint64_t>(age_ns), tid);

  std::string path = opts_.dump_path;
  if (path.empty() && !opts_.dump_dir.empty()) {
#if defined(__unix__) || defined(__APPLE__)
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    path = opts_.dump_dir + "/pmpr-watchdog-" + std::to_string(pid) +
           ".json";
  }
  bool dumped = false;
  if (!path.empty()) {
    DiagnosticContext ctx;
    ctx.kind = "watchdog_stall";
    ctx.stalled_phase = phase;
    ctx.stalled_tid = tid;
    ctx.stall_age_ns = age_ns;
    ctx.threshold_ns = to_ns(opts_.stall_threshold);
    dumped = write_diagnostic_report(path, ctx);
  }
  PMPR_LOG(kWarn) << "watchdog: no heartbeat for "
                  << age_ns / 1000000 << " ms in phase '" << phase
                  << "' (tid " << tid << ", threshold "
                  << opts_.stall_threshold.count() << " ms)"
                  << (dumped ? " — diagnostic dump: " + path : std::string());
  if (opts_.abort_on_stall) std::abort();
}

void Watchdog::loop() {
  set_thread_name("obs.watchdog");
  const std::chrono::milliseconds interval = effective_interval();
  for (;;) {
    check_once();
    LockGuard lock(mu_);
    if (stop_requested_) return;
    // Interruptible pacing: stop() flips stop_requested_ under mu_ and
    // notifies, so shutdown never waits out a full interval.
    wake_cv_.wait_for(lock, interval);
  }
}

}  // namespace pmpr::obs
