// Runtime telemetry: tagged memory accounting + residency probes (the
// memory observability pillar).
//
// PR 8 made memory the governing resource (--memory-budget-mb drives LRU
// paging over mmapped compressed parts), but until this pillar the obs
// layer only *estimated* footprints. Three instruments fix that:
//
//   1. Tagged allocation accounting. Every big allocation site charges its
//      bytes to a MemTag (graph arrays, compiled kernels, decode scratch,
//      paged oocore payloads, obs itself). Charges flow through MemCharge
//      RAII members or the TaggedAlloc STL allocator; per-thread monotone
//      alloc/free tallies use the same cache-line-padded slot discipline
//      as counters.cpp, and a small set of global padded live/peak pairs
//      maintains watermarks (live can dip and rise, so it cannot live in
//      per-thread blocks).
//   2. Process residency readers: current RSS from /proc/self/statm and
//      lifetime peak RSS from getrusage, plus a ResidencyProbe interface
//      the paged store implements so the sampler can chart real (mincore)
//      store residency against the budget. Defining the contract here (and
//      not in graph/) keeps obs below graph in the module DAG.
//   3. Fixed Chrome-trace counter-track names (mem.rss, mem.tagged.<tag>,
//      mem.oocore_resident, mem.budget) for obs::Sampler.
//
// Cost discipline: record_alloc/record_free are a single relaxed atomic
// load + branch when accounting is disabled. Charge sites are container
// builds — never per-element; hot loops must not call these.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

namespace pmpr::obs {

/// What a charged allocation is for. Keep kMemTagNames and kMemTraceTracks
/// in memory.cpp in sync.
enum class MemTag : std::size_t {
  kGraph = 0,       ///< Temporal CSR adjacency arrays (row_ptr/col/time).
  kCompiledKernel,  ///< CompiledBatchCsr / CompiledWindowCsr structures.
  kDecodeScratch,   ///< io::DecodeScratch chunk-decode buffers.
  kOocorePayload,   ///< Mapped compressed part payloads in the paged store.
  kObs,             ///< The telemetry layer's own buffers (sampler ring).
  kOther,           ///< Anything charged without a more specific tag.
};
inline constexpr std::size_t kNumMemTags = 6;

/// Human-readable snake_case name (stable; used as JSON keys).
[[nodiscard]] std::string_view to_string(MemTag t);

/// The Chrome-trace counter-track name for a tag ("mem.tagged.<tag>").
/// record_counter_sample() stores only the pointer, so these are fixed
/// string literals with static storage duration.
[[nodiscard]] const char* trace_track_name(MemTag t);

/// Point-in-time aggregate for one tag. alloc/free are monotone tallies
/// summed over the per-thread blocks (exact once producers quiesce, like
/// counters); live/peak are the global watermark pair.
struct MemTagSnapshot {
  std::uint64_t alloc_bytes = 0;  ///< Total bytes ever charged.
  std::uint64_t free_bytes = 0;   ///< Total bytes ever released.
  std::int64_t live_bytes = 0;    ///< Currently charged (alloc - free).
  std::uint64_t peak_bytes = 0;   ///< Highest observed live watermark.
};

/// Aggregate of every tag plus the cross-tag total. The total peak is a
/// watermark of the *summed* live bytes, which is what "peak memory" means
/// for a run — it is not the sum of per-tag peaks (those may not coincide
/// in time).
struct MemorySnapshot {
  std::array<MemTagSnapshot, kNumMemTags> tags{};
  std::int64_t total_live_bytes = 0;
  std::uint64_t total_peak_bytes = 0;

  [[nodiscard]] const MemTagSnapshot& operator[](MemTag t) const {
    return tags[static_cast<std::size_t>(t)];
  }
};

namespace detail {
/// Inline so memory_accounting_enabled() compiles to one load per call.
inline std::atomic<bool> g_memory_accounting_enabled{false};
/// Out-of-line slow path: claims this thread's tally block on first use,
/// records the tally, and maintains the global live/peak watermarks.
void memory_add(MemTag t, std::uint64_t bytes, bool is_free);
}  // namespace detail

/// Whether record_alloc/record_free record anything. The single check on
/// the disabled hot path.
[[nodiscard]] inline bool memory_accounting_enabled() {
  // relaxed: an advisory on/off gate — stale reads only delay when
  // accounting starts/stops by a few events; no data is published through
  // this flag.
  return detail::g_memory_accounting_enabled.load(std::memory_order_relaxed);
}

/// Enables/disables memory accounting. Returns the previous setting.
/// The gate must be constant over any raw record_alloc/record_free or
/// TaggedAlloc allocation's lifetime or live totals drift (MemCharge is
/// immune: it remembers what it actually charged).
bool set_memory_accounting_enabled(bool enabled);

/// Charges `bytes` against `tag`. Near-zero cost when disabled. Safe from
/// any thread, including pool workers.
inline void record_alloc(MemTag tag, std::size_t bytes) {
  if (bytes == 0 || !memory_accounting_enabled()) return;
  detail::memory_add(tag, bytes, /*is_free=*/false);
}

/// Releases `bytes` previously charged against `tag`. Callers own the
/// symmetry with record_alloc — prefer MemCharge, which owns it for you.
inline void record_free(MemTag tag, std::size_t bytes) {
  if (bytes == 0 || !memory_accounting_enabled()) return;
  detail::memory_add(tag, bytes, /*is_free=*/true);
}

/// RAII ownership of one tagged byte charge. Embed as a member next to the
/// container it describes and reset() it whenever the container's real
/// footprint changes; the destructor releases whatever was last charged.
/// Copying re-charges the same bytes (the copy owns its own release), so
/// containers holding a MemCharge keep value semantics. If accounting is
/// disabled at reset() time nothing is charged and nothing will be
/// released — the pair stays symmetric across gate flips by construction.
class MemCharge {
 public:
  MemCharge() = default;
  MemCharge(MemTag tag, std::size_t bytes) { reset(tag, bytes); }

  MemCharge(const MemCharge& other) : tag_(other.tag_), bytes_(other.bytes_) {
    if (bytes_ != 0) detail::memory_add(tag_, bytes_, /*is_free=*/false);
  }
  MemCharge& operator=(const MemCharge& other) {
    if (this == &other) return *this;
    release();
    tag_ = other.tag_;
    bytes_ = other.bytes_;
    if (bytes_ != 0) detail::memory_add(tag_, bytes_, /*is_free=*/false);
    return *this;
  }
  MemCharge(MemCharge&& other) noexcept
      : tag_(other.tag_), bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  MemCharge& operator=(MemCharge&& other) noexcept {
    if (this == &other) return *this;
    release();
    tag_ = other.tag_;
    bytes_ = other.bytes_;
    other.bytes_ = 0;
    return *this;
  }
  ~MemCharge() { release(); }

  /// Releases the previous charge, then charges `bytes` under `tag`. A
  /// disabled gate at call time charges nothing (bytes() reads 0).
  void reset(MemTag tag, std::size_t bytes) {
    release();
    tag_ = tag;
    if (bytes != 0 && memory_accounting_enabled()) {
      bytes_ = bytes;
      detail::memory_add(tag_, bytes_, /*is_free=*/false);
    }
  }

  /// Releases the current charge early (idempotent).
  void release() {
    if (bytes_ != 0) {
      detail::memory_add(tag_, bytes_, /*is_free=*/true);
      bytes_ = 0;
    }
  }

  [[nodiscard]] MemTag tag() const { return tag_; }
  /// Bytes actually charged (0 when the gate was off at reset()).
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

 private:
  MemTag tag_ = MemTag::kOther;
  std::size_t bytes_ = 0;
};

/// Minimal STL-compatible allocator that charges every allocation to Tag.
/// Wraps std::allocator (so the naked-new/operator-new bans stay moot).
/// The accounting gate must be constant over each allocation's lifetime;
/// containers built before set_memory_accounting_enabled(true) and freed
/// after ...(false) will skew live totals.
template <typename T, MemTag Tag>
class TaggedAlloc {
 public:
  using value_type = T;
  /// Non-type Tag parameter defeats allocator_traits' automatic
  /// Alloc<U, Args...> rebind — spell it out.
  template <typename U>
  struct rebind {
    using other = TaggedAlloc<U, Tag>;
  };

  TaggedAlloc() = default;
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor): rebind conversion.
  TaggedAlloc(const TaggedAlloc<U, Tag>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    record_alloc(Tag, n * sizeof(T));
    return std::allocator<T>{}.allocate(n);
  }
  void deallocate(T* p, std::size_t n) noexcept {
    std::allocator<T>{}.deallocate(p, n);
    record_free(Tag, n * sizeof(T));
  }

  friend bool operator==(const TaggedAlloc&, const TaggedAlloc&) {
    return true;
  }
  friend bool operator!=(const TaggedAlloc&, const TaggedAlloc&) {
    return false;
  }
};

/// Sums the per-thread tally blocks and reads the live/peak watermarks.
/// Advisory while producers run; exact after they quiesce.
[[nodiscard]] MemorySnapshot memory_snapshot();

/// Zeroes every tally block and watermark. Only meaningful while no
/// producer is mid-flight (racy-by-contract, like reset_counters). Live
/// MemCharge objects still release their bytes later, so resetting under
/// outstanding charges drives live negative — test-only territory.
void reset_memory_accounting();

/// Current resident set size of the process in bytes, read from
/// /proc/self/statm. Returns 0 where unavailable (non-Linux).
[[nodiscard]] std::uint64_t current_rss_bytes();

/// Process-lifetime peak resident set size in bytes (getrusage ru_maxrss,
/// normalized to bytes across platforms). Returns 0 on failure.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Monitor-read contract letting the sampler chart a paged store's real
/// (mincore-measured) residency against its budget without obs depending
/// on graph/ or io/ — the consumer layer defines the interface, the
/// provider implements it, mirroring obs::SchedulerProbe. All methods are
/// advisory monitor reads and must be safe to call from the sampler thread
/// at any instant between register and unregister.
class ResidencyProbe {
 public:
  virtual ~ResidencyProbe() = default;

  /// Bytes of the probe's backing store currently resident in physical
  /// memory (an mincore page scan, not a charge).
  [[nodiscard]] virtual std::uint64_t probe_resident_bytes() const = 0;

  /// The configured paging budget in bytes (0 = unbounded).
  [[nodiscard]] virtual std::uint64_t probe_budget_bytes() const = 0;
};

/// Installs `probe` as the store the sampler charts (one at a time; a
/// second registration replaces the first).
void register_residency_probe(const ResidencyProbe* probe);

/// Removes `probe` if it is the registered one. Blocks until any in-flight
/// sampler read has completed, so the caller may destroy the probe
/// immediately after this returns.
void unregister_residency_probe(const ResidencyProbe* probe);

/// Sampler-side read: fills both out-params from the registered probe and
/// returns true, or returns false when no probe is registered.
[[nodiscard]] bool probed_residency(std::uint64_t* resident_bytes,
                                    std::uint64_t* budget_bytes);

}  // namespace pmpr::obs
