// Runtime telemetry: heartbeats + stall watchdog (observability pillar 7,
// hang half — the flight recorder covers crashes, this covers the run
// that never comes back).
//
// Two pieces:
//
//   1. Heartbeats. Every participating thread owns a cache-line-padded
//      slot (counters-style claim discipline) holding {last-beat
//      timestamp, current phase literal, beat tally, label}. The thread
//      pool beats per task and retires its slot when it parks; the three
//      runners beat at every phase edge (via FrPhase below); the paged
//      store beats on its map/evict path. heartbeat() is one relaxed
//      load + branch when the gate is off.
//
//   2. The Watchdog monitor thread (structured like obs::Sampler:
//      interruptible condvar pacing, swap-join stop). Each tick it scans
//      the *active* slots (phase != idle) for the stalest beat; when that
//      age exceeds the stall threshold and no slot has beaten since the
//      last fire, it records the stall (flight recorder + global stats),
//      writes a diagnostic dump naming the stalled phase (reusing the
//      crash-report writer on the safe path — obs/crash.cpp), logs a
//      warning, and optionally aborts the process. Detection latency is
//      at most threshold + check interval (interval defaults to
//      threshold/4, so < 1.25x threshold, well under the 2x budget the
//      smoke gate asserts).
//
// False-positive tuning (see DESIGN.md §7): the threshold bounds *phase
// silence*, not phase duration — phases beat at both edges, the pool
// beats per task, and idle workers retire their slots, so a legitimate
// quiet period only arises inside one long-running kernel call. Size
// --watchdog-ms to a multiple of the slowest expected single-window
// iterate phase, not of the whole run.
//
// Phase arguments must be string literals (static storage): slots store
// the pointer, and the crash path may dereference it at any time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/flightrec.hpp"
#include "util/thread_annotations.hpp"

namespace pmpr::obs {

namespace detail {
/// Inline so heartbeats_enabled() compiles to one load per call site.
inline std::atomic<bool> g_heartbeats_enabled{false};
/// Out-of-line slow paths: claim this thread's slot on first use.
void heartbeat_slow(const char* phase);
void heartbeat_idle_slow();
}  // namespace detail

/// Whether heartbeat() records anything. The single check on the disabled
/// hot path.
[[nodiscard]] inline bool heartbeats_enabled() {
  // relaxed: an advisory on/off gate — stale reads only delay when
  // monitoring starts/stops by a beat or two; no data is published
  // through this flag.
  return detail::g_heartbeats_enabled.load(std::memory_order_relaxed);
}

/// Enables/disables heartbeat recording. Returns the previous setting.
/// Watchdog::start()/stop() toggle this automatically; tests may drive it
/// directly.
bool set_heartbeats_enabled(bool enabled);

/// Marks the calling thread alive in `phase` (a string literal). Near-zero
/// cost when disabled. Called at phase edges and per pool task — never
/// per edge/iteration.
inline void heartbeat(const char* phase) {
  if (!heartbeats_enabled()) return;
  detail::heartbeat_slow(phase);
}

/// Retires the calling thread's slot (phase = idle): an idle thread is
/// not stalled, however old its last beat. Pool workers call this before
/// parking and after draining their queues.
inline void heartbeat_idle() {
  if (!heartbeats_enabled()) return;
  detail::heartbeat_idle_slow();
}

/// Labels the calling thread's heartbeat slot for diagnostic dumps.
/// Ungated (threads name themselves at spawn, once); forwarded from
/// obs::set_thread_name like fr_set_thread_label.
void heartbeat_set_label(std::string_view label);

/// One slot's state as seen by the monitor/metrics (safe path).
struct HeartbeatView {
  std::uint32_t tid = 0;      ///< Heartbeat slot index.
  std::string label;          ///< Thread label ("" when never set).
  std::string phase;          ///< Current phase ("" = idle slot).
  std::int64_t age_ns = 0;    ///< now - last beat (active slots only).
  std::uint64_t beats = 0;    ///< Lifetime beat tally.
};

/// Snapshot of every claimed slot (idle ones included, with phase "").
[[nodiscard]] std::vector<HeartbeatView> heartbeat_table();

/// Process-wide watchdog totals for the metrics "diagnostics" section.
struct WatchdogStats {
  std::uint64_t arms = 0;   ///< Watchdog::start() calls.
  std::uint64_t fires = 0;  ///< Stalls declared.
  /// Stalest active-heartbeat age ever observed by a watchdog tick (a
  /// high-water mark even across runs that never fired).
  std::int64_t max_heartbeat_age_ns = 0;
  std::string last_stalled_phase;  ///< Phase named by the latest fire.
};
[[nodiscard]] WatchdogStats watchdog_stats();

/// Zeroes the process-wide totals (test isolation; racy-by-contract).
void reset_watchdog_stats();

/// Writes the JSON array of claimed heartbeat slots
/// ({"tid","label","phase","age_ns","beats"}) to `fd` using only atomic
/// loads and write(2). Async-signal-safe; the crash handler calls it.
void watchdog_emit_heartbeats_json(int fd);

/// Forces the heartbeat registry to exist now so the crash handler only
/// ever loads an already-published pointer. Called by
/// install_crash_handler(); harmless to call repeatedly.
void watchdog_prewarm();

struct WatchdogOptions {
  /// An active slot whose last beat is older than this is a stall.
  std::chrono::milliseconds stall_threshold{2000};
  /// Monitor tick period. Zero (the default) derives threshold/4,
  /// clamped to [1 ms, threshold].
  std::chrono::milliseconds check_interval{0};
  /// Where fire() writes its diagnostic dump; "" = log only.
  std::string dump_path;
  /// Directory convenience: when dump_path is empty and this is set, the
  /// dump lands at <dump_dir>/pmpr-watchdog-<pid>.json.
  std::string dump_dir;
  /// std::abort() after dumping (turns a silent hang into a crash the
  /// crash handler and CI can see).
  bool abort_on_stall = false;
};

/// The stall monitor. Construction does not arm it; start() enables
/// heartbeats and spawns the monitor thread, stop() joins it and restores
/// the previous heartbeat gate. Same lifetime discipline as Sampler:
/// prompt interruptible shutdown, concurrent/repeated stop() is safe.
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions opts = {});
  ~Watchdog();  ///< Stops and joins if still running.

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Arms the watchdog. No-op if already running.
  void start();

  /// Signals the monitor and joins it. Idempotent and safe to race from
  /// several threads (the joinable thread handle is swapped out under the
  /// lock; exactly one caller joins).
  void stop();

  [[nodiscard]] bool running() const;

  /// Stalls this instance has declared.
  [[nodiscard]] std::uint64_t fires() const {
    // relaxed: advisory monitor gauge.
    return fires_.load(std::memory_order_relaxed);
  }

  /// One evaluation of the stall predicate (exactly what the monitor
  /// does per tick). Returns true if it fired. Usable without start()
  /// when heartbeats are enabled manually — deterministic tests hinge on
  /// this.
  bool check_once();

 private:
  void loop();
  void fire(const char* phase, std::uint32_t tid, std::int64_t age_ns,
            std::uint64_t total_beats);
  [[nodiscard]] std::chrono::milliseconds effective_interval() const;

  const WatchdogOptions opts_;

  mutable Mutex mu_;
  CondVar wake_cv_;
  bool stop_requested_ PMPR_GUARDED_BY(mu_) = false;
  std::thread thread_ PMPR_GUARDED_BY(mu_);
  bool prev_heartbeats_ PMPR_GUARDED_BY(mu_) = false;

  std::atomic<std::uint64_t> fires_{0};
  /// Total beat tally at the last fire: a stall episode refires only
  /// after some slot made progress. Monitor-thread state (check_once
  /// callers must not race a live loop, like Sampler::sample_once).
  std::uint64_t beats_at_last_fire_ = 0;
  bool fired_since_progress_ = false;
};

/// RAII failure-diagnostics scope for runner phases: records
/// kSpanBegin/kSpanEnd into the flight recorder and beats the calling
/// thread's heartbeat at both edges. Sits next to PMPR_TRACE_SPAN +
/// PhaseTimer at every phase site; costs two relaxed loads when both
/// gates are off. `name` must be a string literal.
class FrPhase {
 public:
  explicit FrPhase(const char* name, std::uint64_t id = 0)
      : name_(name), id_(id) {
    fr_record(FrEvent::kSpanBegin, name_, id_);
    heartbeat(name_);
  }
  ~FrPhase() {
    fr_record(FrEvent::kSpanEnd, name_, id_);
    heartbeat(name_);
  }

  FrPhase(const FrPhase&) = delete;
  FrPhase& operator=(const FrPhase&) = delete;

 private:
  const char* name_;
  std::uint64_t id_;
};

#define PMPR_FR_CONCAT2(a, b) a##b
#define PMPR_FR_CONCAT(a, b) PMPR_FR_CONCAT2(a, b)

/// Scoped phase breadcrumb + heartbeat (see FrPhase).
#define PMPR_FR_PHASE(name, id) \
  ::pmpr::obs::FrPhase PMPR_FR_CONCAT(pmpr_fr_phase_, __LINE__)(name, id)

}  // namespace pmpr::obs
