#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>

#include "obs/counters.hpp"
#include "util/stats.hpp"

namespace pmpr::obs {

namespace {

constexpr std::array<std::string_view, kNumPhases> kPhaseNames = {
    "build",
    "init",
    "iterate",
    "sink",
    "io.page",
};

constexpr std::uint64_t kSub = 1u << kHistSubBits;

/// One aligned block per registered thread: per-phase bucket counts plus
/// the sum/max needed for mean and exact-max export. ~9 KiB per block —
/// the pool is smaller than the counters' (64 owned slots) because blocks
/// are two orders of magnitude bigger and only phase-recording threads
/// (pool workers + the driver) ever claim one.
struct alignas(64) HistBlock {
  std::array<std::array<std::atomic<std::uint64_t>, kHistNumBuckets>,
             kNumPhases>
      counts{};
  std::array<std::atomic<std::uint64_t>, kNumPhases> sum_ns{};
  std::array<std::atomic<std::uint64_t>, kNumPhases> max_ns{};
};

constexpr std::size_t kOwnedBlocks = 64;
constexpr std::size_t kTotalBlocks = kOwnedBlocks + 1;

struct Registry {
  std::array<HistBlock, kTotalBlocks> blocks;
  std::atomic<std::size_t> next_slot{0};
};

Registry& registry() {
  // Intentionally leaked singleton: pool worker threads may still record
  // phase durations while function-local statics are destroyed at exit, so
  // the registry must outlive every thread (same rationale as the counter
  // and trace registries).
  static Registry* r = new Registry;
  return *r;
}

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
thread_local std::size_t tls_slot = kNoSlot;

}  // namespace

std::string_view to_string(Phase p) {
  return kPhaseNames[static_cast<std::size_t>(p)];
}

std::size_t bucket_index(std::uint64_t ns) {
  if (ns < kSub) return static_cast<std::size_t>(ns);
  const auto top = static_cast<std::size_t>(std::bit_width(ns)) - 1;
  if (top > kHistMaxExp) return kHistNumBuckets - 1;
  const std::size_t octave = top - kHistSubBits;
  const auto sub =
      static_cast<std::size_t>((ns >> (top - kHistSubBits)) & (kSub - 1));
  return kSub + octave * kSub + sub;
}

std::uint64_t bucket_upper_ns(std::size_t i) {
  if (i >= kHistNumBuckets) i = kHistNumBuckets - 1;
  if (i < kSub) return i;
  const std::size_t octave = (i - kSub) / kSub;
  const std::size_t sub = (i - kSub) % kSub;
  const std::size_t top = octave + kHistSubBits;
  const std::uint64_t step = 1ULL << (top - kHistSubBits);
  return (1ULL << top) + static_cast<std::uint64_t>(sub + 1) * step - 1;
}

std::uint64_t PhaseHistogram::total_count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  return total;
}

double PhaseHistogram::mean_ns() const {
  const std::uint64_t total = total_count();
  return total == 0 ? 0.0
                    : static_cast<double>(sum_ns) /
                          static_cast<double>(total);
}

std::uint64_t PhaseHistogram::percentile_ns(double q) const {
  const std::size_t idx = percentile_bucket(counts, q);
  if (idx >= kHistNumBuckets) return 0;  // empty histogram
  // The top bucket is open-ended (clamped recordings); report the exact
  // observed maximum instead of its synthetic bound.
  if (idx == kHistNumBuckets - 1 && max_ns > bucket_upper_ns(idx)) {
    return max_ns;
  }
  return std::min(bucket_upper_ns(idx), max_ns);
}

PhaseHistogram PhaseHistogram::delta_since(const PhaseHistogram& base) const {
  PhaseHistogram d;
  for (std::size_t i = 0; i < kHistNumBuckets; ++i) {
    d.counts[i] =
        counts[i] >= base.counts[i] ? counts[i] - base.counts[i] : 0;
  }
  d.sum_ns = sum_ns >= base.sum_ns ? sum_ns - base.sum_ns : 0;
  d.max_ns = max_ns;  // cumulative-max semantics, see header
  return d;
}

namespace detail {

void histogram_record(Phase p, std::uint64_t ns) {
  Registry& r = registry();
  if (tls_slot == kNoSlot) {
    // seq_cst fetch_add: runs once per thread; no need to reason about a
    // weaker order.
    tls_slot = std::min(r.next_slot.fetch_add(1), kOwnedBlocks);
  }
  HistBlock& block = r.blocks[tls_slot];
  const auto phase = static_cast<std::size_t>(p);
  // relaxed (all three): bucket counts / sums are commutative monotonic
  // tallies read by histograms_snapshot(), which is advisory by contract
  // while writers are live; no other data is published through them.
  block.counts[phase][bucket_index(ns)].fetch_add(1,
                                                  std::memory_order_relaxed);
  block.sum_ns[phase].fetch_add(ns, std::memory_order_relaxed);
  // relaxed load: seeds the advisory-max CAS loop below, same argument.
  std::uint64_t prev = block.max_ns[phase].load(std::memory_order_relaxed);
  while (prev < ns &&
         // relaxed CAS: the max is a monotonic advisory watermark, same
         // argument as the tallies above.
         !block.max_ns[phase].compare_exchange_weak(
             prev, ns, std::memory_order_relaxed,
             std::memory_order_relaxed)) {
  }
  count(Counter::kHistogramRecords);
}

}  // namespace detail

bool set_histograms_enabled(bool enabled) {
  // seq_cst exchange: cold toggle, strongest order keeps reasoning trivial.
  return detail::g_histograms_enabled.exchange(enabled);
}

HistogramSnapshot histograms_snapshot() {
  Registry& r = registry();
  HistogramSnapshot snap;
  for (const HistBlock& block : r.blocks) {
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      PhaseHistogram& out = snap.phases[p];
      for (std::size_t i = 0; i < kHistNumBuckets; ++i) {
        // relaxed: see histogram_record — totals are advisory while
        // writers run.
        out.counts[i] += block.counts[p][i].load(std::memory_order_relaxed);
      }
      // relaxed (both): advisory aggregation, as above.
      out.sum_ns += block.sum_ns[p].load(std::memory_order_relaxed);
      out.max_ns = std::max(
          out.max_ns, block.max_ns[p].load(std::memory_order_relaxed));
    }
  }
  return snap;
}

void reset_histograms() {
  Registry& r = registry();
  for (HistBlock& block : r.blocks) {
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      for (std::size_t i = 0; i < kHistNumBuckets; ++i) {
        // relaxed: reset is racy-by-contract against live producers, same
        // as reset_counters.
        block.counts[p][i].store(0, std::memory_order_relaxed);
      }
      // relaxed (both): as above.
      block.sum_ns[p].store(0, std::memory_order_relaxed);
      block.max_ns[p].store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace pmpr::obs
