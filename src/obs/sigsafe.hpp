// Async-signal-safe output helpers for the failure-diagnostics pillar
// (obs/flightrec, obs/watchdog, obs/crash).
//
// Everything in this header is callable from a signal handler: no
// allocation, no locks, no stdio/iostreams, no errno-clobbering
// surprises — each helper formats into a small stack buffer and hands it
// to write(2). Short writes and EINTR are retried; other errors are
// swallowed, because a crash dump is best-effort by definition (the
// process is already dying and must re-raise promptly).
//
// The crash handler's signal-safety discipline is machine-checked: the
// pmpr-lint rule `signal-unsafe-in-handler` bans malloc/new/locks/
// iostreams/std::string inside PMPR_ASYNC_SIGNAL_SAFE_BEGIN/END regions
// (see ci/pmpr_lint.py). Keep this header on that diet.
#pragma once

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>

namespace pmpr::obs {

// PMPR_ASYNC_SIGNAL_SAFE_BEGIN

/// write(2) the full buffer, retrying short writes and EINTR. Errors are
/// dropped: the callers are crash/watchdog dump paths where there is no
/// recovery story beyond "emit what you can".
inline void sigsafe_write(int fd, const char* s, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ::ssize_t n = ::write(fd, s + off, len - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;
  }
}

/// Emits a NUL-terminated string (strlen by hand — no libc string calls
/// beyond what POSIX lists as async-signal-safe, and strlen is not on
/// every platform's list).
inline void sigsafe_puts(int fd, const char* s) {
  std::size_t len = 0;
  while (s[len] != '\0') ++len;
  sigsafe_write(fd, s, len);
}

/// Formats `v` in decimal into `buf` (no terminator) and returns the
/// length. `buf` must hold at least 20 bytes (max u64 digits).
inline std::size_t sigsafe_format_u64(char* buf, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + (v % 10));
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

/// Emits an unsigned decimal.
inline void sigsafe_put_u64(int fd, std::uint64_t v) {
  char buf[20];
  sigsafe_write(fd, buf, sigsafe_format_u64(buf, v));
}

/// Emits a signed decimal.
inline void sigsafe_put_i64(int fd, std::int64_t v) {
  if (v < 0) {
    sigsafe_write(fd, "-", 1);
    // Negate via unsigned arithmetic so INT64_MIN does not overflow.
    sigsafe_put_u64(fd, static_cast<std::uint64_t>(0) -
                            static_cast<std::uint64_t>(v));
    return;
  }
  sigsafe_put_u64(fd, static_cast<std::uint64_t>(v));
}

/// Emits `s` as the body of a JSON string (caller writes the quotes).
/// Characters that would need escaping (quote, backslash, control bytes)
/// are replaced with '_' rather than escaped — the inputs are identifiers
/// (phase names, thread labels, truncated exception text) where fidelity
/// of punctuation is worth less than keeping this loop trivially safe.
inline void sigsafe_put_json_str(int fd, const char* s) {
  char buf[256];
  std::size_t n = 0;
  for (std::size_t i = 0; s[i] != '\0'; ++i) {
    if (n == sizeof(buf)) break;  // truncate absurd inputs
    const unsigned char c = static_cast<unsigned char>(s[i]);
    buf[n++] = (c < 0x20 || c == '"' || c == '\\' || c >= 0x7f)
                   ? '_'
                   : static_cast<char>(c);
  }
  sigsafe_write(fd, buf, n);
}

// PMPR_ASYNC_SIGNAL_SAFE_END

}  // namespace pmpr::obs
