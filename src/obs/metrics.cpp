#include "obs/metrics.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace pmpr::obs {

namespace {

/// Shortest-round-trip-ish double formatting for JSON (no inf/nan inputs
/// by contract: residuals and seconds are finite).
std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

void write_metrics_json(const RunResult& result, std::ostream& out) {
  out << "{\n";
  out << "  \"schema\": \"pmpr-metrics-v1\",\n";
  out << "  \"build_seconds\": " << fmt(result.build_seconds) << ",\n";
  out << "  \"compute_seconds\": " << fmt(result.compute_seconds) << ",\n";
  out << "  \"total_seconds\": " << fmt(result.total_seconds()) << ",\n";
  out << "  \"num_windows\": " << result.num_windows << ",\n";
  out << "  \"total_iterations\": " << result.total_iterations << ",\n";
  out << "  \"peak_memory_bytes\": " << result.peak_memory_bytes << ",\n";

  out << "  \"counters\": {";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << to_string(static_cast<Counter>(i))
        << "\": " << result.counters.values[i];
  }
  out << "\n  },\n";

  out << "  \"windows\": [";
  for (std::size_t w = 0; w < result.num_windows; ++w) {
    const int iters = w < result.iterations_per_window.size()
                          ? result.iterations_per_window[w]
                          : 0;
    const double final_residual =
        w < result.final_residuals.size() ? result.final_residuals[w] : 0.0;
    out << (w == 0 ? "\n" : ",\n");
    out << "    {\"window\": " << w << ", \"iterations\": " << iters
        << ", \"final_residual\": " << fmt(final_residual)
        << ", \"residuals\": [";
    if (w < result.residual_trajectories.size()) {
      const auto& traj = result.residual_trajectories[w];
      for (std::size_t i = 0; i < traj.size(); ++i) {
        out << (i == 0 ? "" : ", ") << fmt(traj[i]);
      }
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

bool write_metrics_json(const RunResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_json(result, out);
  return static_cast<bool>(out);
}

}  // namespace pmpr::obs
