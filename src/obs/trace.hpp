// Runtime telemetry: scoped trace spans (observability pillar 2).
//
// `PMPR_TRACE_SPAN("phase.name")` opens an RAII span covering the enclosing
// scope; per-thread buffers collect (name, tid, t_start, t_end) records and
// `write_chrome_trace` exports them as Chrome trace-event JSON — load the
// file in Perfetto (https://ui.perfetto.dev) or chrome://tracing to see the
// scheduler's window/batch interleaving across threads.
//
// Cost discipline: when tracing is disabled the span constructor is one
// relaxed atomic load + branch and the destructor a null check. When
// enabled, a span costs two steady_clock reads plus one append under the
// (uncontended, per-thread) buffer mutex — spans therefore instrument
// runner *phases* (window build, iterate, sink), never kernel inner loops.
// Names must be string literals (or otherwise outlive the registry): only
// the pointer is stored.
//
// Span nesting needs no explicit bookkeeping: Chrome "X" (complete) events
// on one tid are re-nested by containment in the viewer.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace pmpr::obs {

namespace detail {
/// Inline so tracing_enabled() compiles to one load at every call site.
inline std::atomic<bool> g_tracing_enabled{false};
/// Appends a finished span to the calling thread's buffer (registering the
/// thread on first use).
void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns);
}  // namespace detail

/// Whether spans record anything. The single check on the disabled path.
[[nodiscard]] inline bool tracing_enabled() {
  // relaxed: advisory on/off gate — a stale read only clips a span at the
  // toggle boundary; no data is published through this flag.
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Enables/disables span recording. Returns the previous setting.
bool set_tracing_enabled(bool enabled);

/// Drops every recorded span (thread registrations are kept).
void clear_trace();

/// Nanoseconds since the process-wide trace epoch (the first touch of the
/// trace registry). Monotonic.
[[nodiscard]] std::int64_t trace_now_ns();

/// One finished span, for tests and ad-hoc inspection.
struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;  ///< Registry-assigned small thread id.
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

/// Copies out every recorded span, sorted by (start, tid). Safe to call
/// while spans are still being recorded (buffers are locked per thread);
/// the result is then a consistent prefix per thread.
[[nodiscard]] std::vector<TraceEvent> collect_trace();

/// One sampled counter-track value, exported as a Chrome "ph":"C" counter
/// event (Perfetto renders each named track as a stacked area chart under
/// the process). Produced by obs::Sampler; `name` must be a string literal.
struct CounterSample {
  std::string name;
  std::int64_t t_ns = 0;
  double value = 0.0;
};

/// Appends one counter-track sample. No-op while tracing is disabled (same
/// gate as spans). Safe from any thread.
void record_counter_sample(const char* name, std::int64_t t_ns, double value);

/// Copies out every recorded counter sample, sorted by (t, name).
[[nodiscard]] std::vector<CounterSample> collect_counter_samples();

/// Names the calling thread's track in the exported trace (a Perfetto
/// "thread_name" metadata event). Registers the thread's buffer if needed,
/// so it works before tracing is enabled; the last call wins. `name` is
/// copied.
void set_thread_name(std::string_view name);

/// Number of spans currently buffered.
[[nodiscard]] std::size_t trace_event_count();

/// Writes the Chrome trace-event JSON: an object with a "traceEvents"
/// array of "ph":"X" complete events (ts/dur in microseconds), "ph":"C"
/// counter events for sampled scheduler gauges, and — whenever any event
/// exists — "ph":"M" process_name/thread_name metadata so Perfetto labels
/// the tracks.
void write_chrome_trace(std::ostream& out);

/// File variant; returns false on IO failure.
[[nodiscard]] bool write_chrome_trace(const std::string& path);

/// RAII scope timer. Prefer the PMPR_TRACE_SPAN macro.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (tracing_enabled()) {
      name_ = name;
      start_ns_ = trace_now_ns();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::record_span(name_, start_ns_, trace_now_ns());
    }
  }

 private:
  const char* name_ = nullptr;  ///< nullptr = tracing was off at entry.
  std::int64_t start_ns_ = 0;
};

}  // namespace pmpr::obs

#define PMPR_TRACE_CONCAT2(a, b) a##b
#define PMPR_TRACE_CONCAT(a, b) PMPR_TRACE_CONCAT2(a, b)

/// Opens a span named `name` (a string literal) covering the enclosing
/// scope.
#define PMPR_TRACE_SPAN(name) \
  ::pmpr::obs::TraceSpan PMPR_TRACE_CONCAT(pmpr_trace_span_, __LINE__)(name)
