// One-shot driver for a single execution model with the full telemetry
// stack: scheduler/kernel counters, per-window convergence metrics, and a
// Perfetto-loadable trace.
//
//   ./pmpr_run --model postmortem --dataset wiki-talk --scale 0.01 \
//              --trace trace.json --metrics metrics.json
//
// Load trace.json in https://ui.perfetto.dev (or chrome://tracing) to see
// the per-phase spans; metrics.json holds the pmpr-metrics-v4 record
// (counters, phase-latency histograms, per-tag memory accounting, sampler
// summary, diagnostics, residual trajectories). Add --profile to run the
// background scheduler sampler during the run: its summary lands in the JSON
// and, with --trace, its queue-depth/parked-worker gauges plus the mem.*
// memory tracks appear as counter tracks under the span timeline.
// ci/obs_smoke.sh validates both shapes; --mem-report prints the per-tag
// table on stdout.
#include <cstdio>
#include <memory>
#include <string>

#include "pmpr.hpp"

using namespace pmpr;

int main(int argc, char** argv) {
  std::string model = "postmortem";
  std::string dataset = "wiki-talk";
  double scale = 0.01;
  std::int64_t seed = 42;
  std::int64_t delta_days = 90;
  std::int64_t sw = 86'400;
  std::int64_t max_windows = 64;
  std::int64_t max_lanes = 0;
  std::string simd = "auto";
  std::string storage = "in-ram";
  std::int64_t memory_budget_mb = 0;
  std::string spill_path;
  std::int64_t parts = 0;
  std::string trace_path;
  std::string metrics_path;
  bool profile = false;
  bool mem_report = false;
  std::int64_t profile_interval_ms = 10;
  std::string flight_recorder_path;
  std::int64_t watchdog_ms = 0;
  std::string crash_dump_dir;
  Options opts("Run one execution model with telemetry enabled");
  opts.add("model", &model, "offline | streaming | postmortem");
  opts.add("max-lanes", &max_lanes,
           "postmortem SpMM lane width/cap, 1..512 (0 = suggested config's "
           "width)");
  opts.add("simd", &simd,
           "auto | scalar | avx2 | avx512 — ISA for the compiled SpMM "
           "sweeps; forced modes fail fast when unsupported. The resolved "
           "ISA lands in the metrics JSON as \"simd_isa\" and the "
           "simd_sweep_* counters record per-ISA sweep invocations");
  opts.add("storage", &storage,
           "postmortem representation: in-ram | compressed | out-of-core "
           "(ranks are bit-identical across all three)");
  opts.add("memory-budget-mb", &memory_budget_mb,
           "out-of-core: hard cap on resident compressed payload, in MiB "
           "(0 = page one part at a time)");
  opts.add("spill", &spill_path,
           "out-of-core: store-file path (empty = unique temp file, "
           "removed on exit)");
  opts.add("parts", &parts,
           "postmortem multi-window graph count Y (0 = suggested config)");
  opts.add("dataset", &dataset,
           "surrogate name (see bench_table1_datasets for the list)");
  opts.add("scale", &scale, "surrogate dataset scale factor");
  opts.add("seed", &seed, "generator seed");
  opts.add("delta-days", &delta_days, "window size in days");
  opts.add("sw", &sw, "sliding offset in seconds");
  opts.add("max-windows", &max_windows, "cap on the number of windows");
  opts.add("trace", &trace_path,
           "write a Chrome trace-event JSON (Perfetto-loadable) here");
  opts.add("metrics", &metrics_path,
           "write the pmpr-metrics-v4 run record here");
  opts.add("profile", &profile,
           "sample the scheduler during the run (sampler summary in "
           "--metrics, counter tracks in --trace)");
  opts.add("mem-report", &mem_report,
           "print the per-tag memory accounting table (live/peak per "
           "MemTag, measured vs estimated peak) at exit");
  opts.add("profile-interval-ms", &profile_interval_ms,
           "sampler tick period in milliseconds");
  opts.add("flight-recorder", &flight_recorder_path,
           "keep the in-memory flight recorder on and write its "
           "pmpr-blackbox-v1 JSON (recent events per thread) here at exit");
  opts.add("watchdog-ms", &watchdog_ms,
           "arm a stall watchdog: a worker phase silent for this many "
           "milliseconds triggers a diagnostic dump naming the stalled "
           "phase (0 = off)");
  opts.add("crash-dump-dir", &crash_dump_dir,
           "install the fatal-signal handler; on SIGSEGV/SIGBUS/SIGABRT/"
           "SIGFPE a pmpr-crash-<pid>.json postmortem lands here (also "
           "enables the flight recorder)");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;
  if (model != "offline" && model != "streaming" && model != "postmortem") {
    std::fprintf(stderr, "unknown --model '%s'\n", model.c_str());
    return 1;
  }
  if (max_lanes < 0 ||
      max_lanes > static_cast<std::int64_t>(kMaxSpmmLanes)) {
    // Fail fast rather than letting the runner clamp: a silently narrowed
    // batch would make a mistyped width look like a perf regression.
    std::fprintf(stderr, "--max-lanes %lld out of range [1, %zu]\n",
                 static_cast<long long>(max_lanes), kMaxSpmmLanes);
    return 1;
  }

  // Counters, histograms, and per-iteration metrics always on here (this
  // binary exists to show them); tracing only when a --trace path was
  // given.
  obs::set_counters_enabled(true);
  obs::set_metrics_enabled(true);
  obs::set_histograms_enabled(true);
  obs::set_memory_accounting_enabled(true);
  if (!trace_path.empty()) obs::set_tracing_enabled(true);
  // Failure diagnostics: the recorder is cheap enough to keep on whenever
  // any of the three surfaces (blackbox file, watchdog dump, crash report)
  // could want its events.
  if (!flight_recorder_path.empty() || !crash_dump_dir.empty() ||
      watchdog_ms > 0) {
    obs::set_flight_recorder_enabled(true);
  }
  if (!crash_dump_dir.empty()) {
    obs::CrashHandlerOptions crash_opts;
    crash_opts.dump_dir = crash_dump_dir;
    if (!obs::install_crash_handler(crash_opts)) {
      std::fprintf(stderr, "failed to install the crash handler\n");
      return 1;
    }
  }
  obs::set_thread_name("main");

  const gen::DatasetSpec spec =
      gen::scaled(gen::dataset_by_name(dataset), scale);
  const TemporalEdgeList events =
      gen::generate(spec, static_cast<std::uint64_t>(seed));
  const WindowSpec windows = WindowSpec::cover_capped(
      events.min_time(), events.max_time(), delta_days * duration::kDay, sw,
      static_cast<std::size_t>(max_windows));
  std::printf("%s surrogate: %zu events, %u vertices, %zu windows\n",
              dataset.c_str(), events.size(), events.num_vertices(),
              windows.count);

  std::unique_ptr<obs::Sampler> sampler;
  if (profile) {
    obs::SamplerOptions sampler_opts;
    sampler_opts.interval =
        std::chrono::milliseconds(profile_interval_ms > 0 ? profile_interval_ms
                                                          : 10);
    sampler = std::make_unique<obs::Sampler>(par::ThreadPool::global(),
                                             sampler_opts);
    sampler->start();
  }

  std::unique_ptr<obs::Watchdog> watchdog;
  if (watchdog_ms > 0) {
    obs::WatchdogOptions wd_opts;
    wd_opts.stall_threshold = std::chrono::milliseconds(watchdog_ms);
    wd_opts.dump_dir = crash_dump_dir.empty() ? "." : crash_dump_dir;
    watchdog = std::make_unique<obs::Watchdog>(wd_opts);
    watchdog->start();
  }

  const SimdMode simd_mode = parse_simd_mode(simd);
  ChecksumSink sink(windows.count);
  RunResult result;
  if (model == "offline") {
    OfflineOptions offline;
    offline.simd = simd_mode;
    result = run_offline(events, windows, sink, offline);
  } else if (model == "streaming") {
    StreamingOptions streaming;
    streaming.simd = simd_mode;
    result = run_streaming(events, windows, sink, streaming);
  } else {
    PostmortemConfig config = suggest_config_for(events, windows);
    config.simd = simd_mode;
    if (max_lanes > 0) {
      config.vector_length = static_cast<std::size_t>(max_lanes);
      config.max_lanes = static_cast<std::size_t>(max_lanes);
    }
    config.storage = parse_storage_kind(storage);
    config.memory_budget_bytes =
        static_cast<std::size_t>(memory_budget_mb) * 1024 * 1024;
    config.spill_path = spill_path;
    if (parts > 0) config.num_multi_windows = static_cast<std::size_t>(parts);
    result = run_postmortem(events, windows, sink, config);
  }

  std::printf("%-10s : build %7.3fs  compute %7.3fs  total %7.3fs  "
              "(%llu iterations, ~%.1f MiB peak)\n",
              model.c_str(), result.build_seconds, result.compute_seconds,
              result.total_seconds(),
              static_cast<unsigned long long>(result.total_iterations),
              static_cast<double>(result.peak_memory_bytes) / (1024 * 1024));
  // Order-independent digest of every window's ranks; two runs that agree
  // bit-for-bit print the same value (ci/oocore_smoke.sh diffs this line
  // between storage kinds).
  double checksum = 0.0;
  for (const double w : sink.weighted()) checksum += w;
  std::printf("checksum   : %.17g over %zu windows\n", checksum,
              sink.weighted().size());
  if (model == "postmortem") {
    std::printf("storage    : %s, representation %.2f MiB\n", storage.c_str(),
                static_cast<double>(result.representation_bytes) /
                    (1024 * 1024));
    if (result.oocore_raw_bytes > 0) {
      std::printf("oocore     : store %.2f MiB / raw %.2f MiB (%.2fx), "
                  "peak resident %.2f MiB, %llu evictions, %llu refaults\n",
                  static_cast<double>(result.oocore_store_bytes) /
                      (1024 * 1024),
                  static_cast<double>(result.oocore_raw_bytes) / (1024 * 1024),
                  static_cast<double>(result.oocore_raw_bytes) /
                      static_cast<double>(result.oocore_store_bytes),
                  static_cast<double>(result.oocore_resident_peak_bytes) /
                      (1024 * 1024),
                  static_cast<unsigned long long>(
                      result.counters[obs::Counter::kPartsEvicted]),
                  static_cast<unsigned long long>(
                      result.counters[obs::Counter::kPartRefaults]));
      // Ground truth (mincore page scan of the store) next to the charge
      // the LRU policy maintained; ci/oocore_smoke.sh asserts the measured
      // value honors the budget (modulo readahead slack).
      std::printf("residency  : measured peak %zu bytes (%.2f MiB) vs "
                  "charged %zu bytes\n",
                  result.oocore_measured_resident_peak_bytes,
                  static_cast<double>(
                      result.oocore_measured_resident_peak_bytes) /
                      (1024 * 1024),
                  result.oocore_resident_peak_bytes);
    }
    if (result.read_amplification > 0.0) {
      std::printf("read-amp   : %.3fx (decoded %llu B / delivered %llu B)\n",
                  result.read_amplification,
                  static_cast<unsigned long long>(
                      result.counters[obs::Counter::kBytesDecoded]),
                  static_cast<unsigned long long>(
                      result.counters[obs::Counter::kWindowOutputBytes]));
    }
  }
  const std::size_t maxrss = static_cast<std::size_t>(obs::peak_rss_bytes());
  if (maxrss > 0) {
    std::printf("maxrss     : %zu bytes (%.1f MiB)\n", maxrss,
                static_cast<double>(maxrss) / (1024 * 1024));
  }
  std::printf("simd       : %s (%llu scalar / %llu avx2 / %llu avx512 "
              "sweeps)\n",
              result.simd_isa.c_str(),
              static_cast<unsigned long long>(
                  result.counters[obs::Counter::kSimdSweepScalar]),
              static_cast<unsigned long long>(
                  result.counters[obs::Counter::kSimdSweepAvx2]),
              static_cast<unsigned long long>(
                  result.counters[obs::Counter::kSimdSweepAvx512]));
  if (watchdog != nullptr) {
    watchdog->stop();
    const obs::WatchdogStats wd = obs::watchdog_stats();
    std::printf("watchdog   : %lldms threshold, %llu stall(s)%s%s\n",
                static_cast<long long>(watchdog_ms),
                static_cast<unsigned long long>(watchdog->fires()),
                watchdog->fires() > 0 ? ", last stalled phase " : "",
                watchdog->fires() > 0 ? wd.last_stalled_phase.c_str() : "");
  }
  if (sampler != nullptr) {
    sampler->stop();
    const obs::SamplerSummary sum = sampler->summary();
    std::printf("sampler    : %llu ticks @ %llums — queue mean %.1f max "
                "%llu, parked mean %.1f, steal success %.2f\n",
                static_cast<unsigned long long>(sum.num_samples),
                static_cast<unsigned long long>(sum.interval_ms),
                sum.mean_total_queued,
                static_cast<unsigned long long>(sum.max_total_queued),
                sum.mean_parked_workers, sum.mean_steal_success_rate);
  }
  const obs::PhaseHistogram& iter_hist =
      result.histograms[obs::Phase::kIterate];
  if (iter_hist.total_count() > 0) {
    std::printf("iterate    : p50 %lluns  p90 %lluns  p99 %lluns  max "
                "%lluns over %llu windows\n",
                static_cast<unsigned long long>(iter_hist.percentile_ns(0.5)),
                static_cast<unsigned long long>(iter_hist.percentile_ns(0.9)),
                static_cast<unsigned long long>(
                    iter_hist.percentile_ns(0.99)),
                static_cast<unsigned long long>(iter_hist.max_ns),
                static_cast<unsigned long long>(iter_hist.total_count()));
  }
  std::printf("counters   : %llu edges traversed, %llu tasks spawned, "
              "%llu/%llu steals, %llu vertices reused\n",
              static_cast<unsigned long long>(
                  result.counters[obs::Counter::kEdgesTraversed]),
              static_cast<unsigned long long>(
                  result.counters[obs::Counter::kTasksSpawned]),
              static_cast<unsigned long long>(
                  result.counters[obs::Counter::kStealsSucceeded]),
              static_cast<unsigned long long>(
                  result.counters[obs::Counter::kStealsAttempted]),
              static_cast<unsigned long long>(
                  result.counters[obs::Counter::kVerticesReused]));

  if (mem_report) {
    // Per-tag accounting at exit: live should be near zero for run-scoped
    // tags (their RAII charges released with the representation), peak is
    // the process watermark the estimate is audited against.
    std::printf("mem-report : %-16s %14s %14s %14s\n", "tag", "alloc (B)",
                "live (B)", "peak (B)");
    for (std::size_t i = 0; i < obs::kNumMemTags; ++i) {
      const obs::MemTagSnapshot& t = result.memory.tags[i];
      std::printf("mem-report : %-16s %14llu %14lld %14llu\n",
                  std::string(obs::to_string(static_cast<obs::MemTag>(i)))
                      .c_str(),
                  static_cast<unsigned long long>(t.alloc_bytes),
                  static_cast<long long>(t.live_bytes),
                  static_cast<unsigned long long>(t.peak_bytes));
    }
    const double measured =
        static_cast<double>(result.memory.total_peak_bytes);
    const double estimate =
        static_cast<double>(result.peak_memory_estimate_bytes);
    std::printf("mem-report : peak measured %.2f MiB vs estimate %.2f MiB "
                "(%+.1f%%)\n",
                measured / (1024 * 1024), estimate / (1024 * 1024),
                estimate > 0.0 ? (measured - estimate) / estimate * 100.0
                               : 0.0);
  }

  if (!metrics_path.empty()) {
    if (!obs::write_metrics_json(result, metrics_path, sampler.get())) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
    std::printf("metrics    : %s\n", metrics_path.c_str());
  }
  if (!flight_recorder_path.empty()) {
    const obs::FlightRecorderStats fr = obs::flight_recorder_stats();
    if (!obs::write_blackbox_json(flight_recorder_path)) {
      std::fprintf(stderr, "failed to write the flight recorder to %s\n",
                   flight_recorder_path.c_str());
      return 1;
    }
    std::printf("blackbox   : %s (%llu events recorded, %llu aged out of "
                "the rings, %llu threads)\n",
                flight_recorder_path.c_str(),
                static_cast<unsigned long long>(fr.records),
                static_cast<unsigned long long>(fr.dropped),
                static_cast<unsigned long long>(fr.threads));
  }
  if (!trace_path.empty()) {
    obs::set_tracing_enabled(false);
    if (!obs::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::printf("trace      : %s (%zu events; load in ui.perfetto.dev)\n",
                trace_path.c_str(), obs::trace_event_count());
  }
  return 0;
}
