// Side-by-side comparison of the three execution models on one dataset —
// a command-line version of the paper's Fig. 5 experiment that also
// verifies the models agree on the results (the fairness check of §5.1).
//
//   ./compare_models --dataset wiki-talk --delta-days 90 --sw 86400
#include <cmath>
#include <cstdio>

#include "pmpr.hpp"

using namespace pmpr;

int main(int argc, char** argv) {
  std::string dataset = "wiki-talk";
  double scale = 0.1;
  std::int64_t seed = 42;
  std::int64_t delta_days = 90;
  std::int64_t sw = 86'400;
  std::int64_t max_windows = 128;
  Options opts("Compare offline / streaming / postmortem on a surrogate");
  opts.add("dataset", &dataset,
           "surrogate name (see bench_table1_datasets for the list)");
  opts.add("scale", &scale, "surrogate dataset scale factor");
  opts.add("seed", &seed, "generator seed");
  opts.add("delta-days", &delta_days, "window size in days");
  opts.add("sw", &sw, "sliding offset in seconds");
  opts.add("max-windows", &max_windows, "cap on the number of windows");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  const gen::DatasetSpec spec =
      gen::scaled(gen::dataset_by_name(dataset), scale);
  const TemporalEdgeList events =
      gen::generate(spec, static_cast<std::uint64_t>(seed));
  const WindowSpec windows = WindowSpec::cover_capped(
      events.min_time(), events.max_time(), delta_days * duration::kDay, sw,
      static_cast<std::size_t>(max_windows));

  std::printf("%s surrogate: %zu events, %u vertices, %zu windows "
              "(delta=%lldd, sw=%llds)\n",
              dataset.c_str(), events.size(), events.num_vertices(),
              windows.count, static_cast<long long>(delta_days),
              static_cast<long long>(sw));

  // --- offline ------------------------------------------------------------
  StoreAllSink offline_sink(windows.count);
  OfflineOptions offline_opts;
  const RunResult offline =
      run_offline(events, windows, offline_sink, offline_opts);
  std::printf("offline    : build %7.3fs  compute %7.3fs  total %7.3fs  "
              "(%llu iterations)\n",
              offline.build_seconds, offline.compute_seconds,
              offline.total_seconds(),
              static_cast<unsigned long long>(offline.total_iterations));

  // --- streaming ------------------------------------------------------------
  StoreAllSink streaming_sink(windows.count);
  StreamingOptions streaming_opts;
  const RunResult streaming =
      run_streaming(events, windows, streaming_sink, streaming_opts);
  std::printf("streaming  : mutate %6.3fs  compute %7.3fs  total %7.3fs  "
              "(%llu iterations)\n",
              streaming.build_seconds, streaming.compute_seconds,
              streaming.total_seconds(),
              static_cast<unsigned long long>(streaming.total_iterations));

  // --- postmortem ---------------------------------------------------------
  StoreAllSink postmortem_sink(windows.count);
  const PostmortemConfig cfg = suggest_config_for(events, windows);
  const RunResult postmortem =
      run_postmortem(events, windows, postmortem_sink, cfg);
  std::printf("postmortem : build %7.3fs  compute %7.3fs  total %7.3fs  "
              "(%llu iterations, mode=%s kernel=%s)\n",
              postmortem.build_seconds, postmortem.compute_seconds,
              postmortem.total_seconds(),
              static_cast<unsigned long long>(postmortem.total_iterations),
              std::string(to_string(cfg.mode)).c_str(),
              std::string(to_string(cfg.kernel)).c_str());

  std::printf("\nspeedup of postmortem: %.1fx over streaming, %.1fx over "
              "offline\n",
              streaming.total_seconds() / postmortem.total_seconds(),
              offline.total_seconds() / postmortem.total_seconds());

  // --- fairness check -------------------------------------------------------
  double max_diff = 0.0;
  for (std::size_t w = 0; w < windows.count; ++w) {
    const auto a = offline_sink.dense(w, events.num_vertices());
    const auto b = streaming_sink.dense(w, events.num_vertices());
    const auto c = postmortem_sink.dense(w, events.num_vertices());
    for (std::size_t v = 0; v < a.size(); ++v) {
      max_diff = std::max(max_diff, std::abs(a[v] - b[v]));
      max_diff = std::max(max_diff, std::abs(a[v] - c[v]));
    }
  }
  std::printf("max cross-model PageRank difference: %.2e %s\n", max_diff,
              max_diff < 1e-6 ? "(models agree)" : "(MISMATCH!)");
  return max_diff < 1e-6 ? 0 : 2;
}
