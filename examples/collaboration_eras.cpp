// Collaboration-network analysis at two time scales (paper §3.1).
//
// The paper motivates the sliding-window parameters with academic
// collaboration networks: a large delta (10 years) surfaces the important
// authors of a scientific *era*, while a small delta (1 year) tracks
// current collaborator dynamics. Neither is "better" — they answer
// different questions — and the postmortem engine computes both series
// from the same temporal CSR.
//
// This example generates a HepTh-like co-authorship surrogate and runs the
// same analysis twice, printing who leads each era vs each year and how
// much the leaders churn at the fine scale.
#include <cstdio>
#include <map>

#include "pmpr.hpp"

using namespace pmpr;

namespace {

/// Top-k vertices of a window by PageRank.
std::vector<std::pair<VertexId, double>> top_k(
    const StoreAllSink& sink, std::size_t w, std::size_t k) {
  auto ranked = sink.window(w);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

void run_scale(const TemporalEdgeList& events, Timestamp delta, Timestamp sw,
               const char* label) {
  const WindowSpec spec =
      WindowSpec::cover(events.min_time(), events.max_time(), delta, sw);
  StoreAllSink sink(spec.count);
  PostmortemConfig cfg;
  cfg.num_multi_windows = std::min<std::size_t>(6, spec.count);
  const RunResult r = run_postmortem(events, spec, sink, cfg);

  std::printf("\n=== %s: delta=%lldd, sw=%lldd -> %zu windows "
              "(%.3fs build, %.3fs compute) ===\n",
              label, static_cast<long long>(delta / duration::kDay),
              static_cast<long long>(sw / duration::kDay), spec.count,
              r.build_seconds, r.compute_seconds);

  // Leader per window + churn of the top-5 set between windows.
  std::vector<VertexId> prev_top;
  for (std::size_t w = 0; w < spec.count; ++w) {
    const auto leaders = top_k(sink, w, 5);
    if (leaders.empty()) continue;
    std::size_t kept = 0;
    for (const auto& [v, pr] : leaders) {
      for (const VertexId p : prev_top) {
        if (p == v) {
          ++kept;
          break;
        }
      }
    }
    std::printf("  window %3zu: leader=author-%-6u pr=%.4f  top5-retained=%zu/5\n",
                w, leaders.front().first, leaders.front().second,
                prev_top.empty() ? leaders.size() : kept);
    prev_top.clear();
    for (const auto& [v, pr] : leaders) prev_top.push_back(v);
  }
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.1;
  std::int64_t seed = 7;
  Options opts("Collaboration eras: one temporal graph, two time scales");
  opts.add("scale", &scale, "surrogate dataset scale factor");
  opts.add("seed", &seed, "generator seed");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  // HepTh-like co-authorship events (paper §3.1: a tuple (a1, a2, day) per
  // co-authored paper). Symmetrize: collaboration is mutual.
  const gen::DatasetSpec spec =
      gen::scaled(gen::dataset_by_name("ca-cit-HepTh"), scale);
  TemporalEdgeList directed =
      gen::generate(spec, static_cast<std::uint64_t>(seed));
  TemporalEdgeList events;
  for (const auto& e : directed.events()) {
    events.add(e.src, e.dst, e.time);
    events.add(e.dst, e.src, e.time);
  }
  events.ensure_vertices(directed.num_vertices());
  events.sort_by_time();

  std::printf("co-authorship surrogate: %zu events, %u authors, %.1f years\n",
              events.size(), events.num_vertices(),
              static_cast<double>(events.max_time() - events.min_time()) /
                  static_cast<double>(duration::kYear));

  // Era view: delta = 10 years, sliding by 1 year.
  run_scale(events, 10 * duration::kYear, duration::kYear,
            "Era view (who defined a decade)");
  // Dynamics view: delta = 1 year, sliding by 90 days.
  run_scale(events, duration::kYear, 90 * duration::kDay,
            "Dynamics view (current collaborator activity)");
  return 0;
}
