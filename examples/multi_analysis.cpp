// Beyond PageRank: the same postmortem representation driving three
// analyses at once (paper §3.1: "different analysis could be done using
// other kernels").
//
// Builds one MultiWindowSet for a stackoverflow-like surrogate and runs
//   * PageRank (the paper's kernel),
//   * weakly-connected components (structure: is the community fragmenting
//     or consolidating?),
//   * Katz centrality (influence with a different prior),
// then uses the time-series utilities to report how the PageRank leadership
// drifts window over window.
#include <cstdio>

#include "analysis/connected_components.hpp"
#include "analysis/katz.hpp"
#include "analysis/timeseries.hpp"
#include "pmpr.hpp"

using namespace pmpr;

int main(int argc, char** argv) {
  double scale = 0.1;
  std::int64_t seed = 3;
  std::int64_t delta_days = 180;
  std::int64_t sw_days = 30;
  Options opts("Multi-kernel postmortem analysis on one representation");
  opts.add("scale", &scale, "surrogate dataset scale factor");
  opts.add("seed", &seed, "generator seed");
  opts.add("delta-days", &delta_days, "window size in days");
  opts.add("sw-days", &sw_days, "sliding offset in days");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  const gen::DatasetSpec spec =
      gen::scaled(gen::dataset_by_name("stackoverflow"), scale);
  const TemporalEdgeList events =
      gen::generate(spec, static_cast<std::uint64_t>(seed));
  const WindowSpec windows =
      WindowSpec::cover(events.min_time(), events.max_time(),
                        delta_days * duration::kDay, sw_days * duration::kDay);

  std::printf("stackoverflow surrogate: %zu events, %u vertices, %zu windows\n",
              events.size(), events.num_vertices(), windows.count);

  // One representation, three analyses.
  Timer build_timer;
  const MultiWindowSet set = MultiWindowSet::build(events, windows, 6);
  std::printf("multi-window representation built in %.3fs (%.1f MB)\n",
              build_timer.seconds(),
              static_cast<double>(set.memory_bytes()) / 1e6);

  // 1. PageRank.
  StoreAllSink pr_sink(windows.count);
  PostmortemConfig cfg;
  cfg.num_multi_windows = 6;
  const RunResult pr = run_postmortem_prebuilt(set, pr_sink, cfg);
  std::printf("pagerank series: %.3fs\n", pr.compute_seconds);

  // 2. Weakly-connected components.
  Timer wcc_timer;
  const auto wcc = analysis::wcc_over_windows(set);
  std::printf("wcc series: %.3fs\n", wcc_timer.seconds());

  // 3. Katz centrality.
  Timer katz_timer;
  analysis::KatzParams katz_params;
  const auto katz = analysis::katz_over_windows(set, katz_params);
  std::printf("katz series: %.3fs\n\n", katz_timer.seconds());

  // Joint report.
  const auto churn = analysis::churn_series(pr_sink, 10);
  std::printf("%-7s %-11s %-12s %-12s %-14s %-12s\n", "window", "active",
              "components", "largest WCC", "PR top10 churn", "Katz leader");
  for (std::size_t w = 0; w < windows.count; ++w) {
    const auto pr_top = analysis::top_k(pr_sink, w, 1);
    // += instead of operator+ dodges a GCC 12 -Wrestrict false positive
    // (PR105651).
    std::string katz_leader = "-";
    if (katz[w].top_vertex != kInvalidVertex) {
      katz_leader = "v";
      katz_leader += std::to_string(katz[w].top_vertex);
    }
    std::printf("%-7zu %-11zu %-12zu %-12zu %-14s %s\n", w, wcc[w].num_active,
                wcc[w].num_components, wcc[w].largest_component,
                w > 0 ? Table::fmt(churn[w - 1], 2).c_str() : "-",
                katz_leader.c_str());
  }

  // Rank-correlation drift: how similar is the full PageRank ordering of
  // consecutive windows?
  if (windows.count >= 2) {
    double min_rho = 1.0;
    std::size_t min_w = 0;
    for (std::size_t w = 1; w < windows.count; ++w) {
      const double rho = analysis::spearman(pr_sink, w - 1, w);
      if (rho < min_rho) {
        min_rho = rho;
        min_w = w;
      }
    }
    std::printf("\nbiggest ranking shake-up at window %zu (Spearman %.3f)\n",
                min_w, min_rho);
  }
  return 0;
}
