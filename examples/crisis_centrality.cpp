// Organizational-crisis centrality tracking (paper §3.2).
//
// Hossain, Murshed et al. showed that during an organizational crisis some
// actors become central in the communication graph. The Enron email corpus
// is the canonical dataset: its edge volume spikes around the 2001 scandal
// (Fig. 4a). This example runs a postmortem PageRank time series over an
// Enron-like surrogate and flags the actors whose rank *rises most* as the
// spike unfolds — the postmortem question par excellence, since it needs
// every window, not just the latest one.
#include <cstdio>
#include <map>

#include "pmpr.hpp"

using namespace pmpr;

int main(int argc, char** argv) {
  double scale = 0.15;
  std::int64_t seed = 11;
  std::int64_t delta_days = 120;
  std::int64_t sw_days = 30;
  Options opts("Crisis centrality: rank trajectories around an event spike");
  opts.add("scale", &scale, "surrogate dataset scale factor");
  opts.add("seed", &seed, "generator seed");
  opts.add("delta-days", &delta_days, "window size in days");
  opts.add("sw-days", &sw_days, "sliding offset in days");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  const gen::DatasetSpec spec =
      gen::scaled(gen::dataset_by_name("ia-enron-email"), scale);
  TemporalEdgeList events = gen::generate(spec, static_cast<std::uint64_t>(seed));

  const WindowSpec windows =
      WindowSpec::cover(events.min_time(), events.max_time(),
                        delta_days * duration::kDay, sw_days * duration::kDay);
  std::printf("enron-like surrogate: %zu events, %u actors, %zu windows\n",
              events.size(), events.num_vertices(), windows.count);

  StoreAllSink sink(windows.count);
  PostmortemConfig cfg;
  cfg.num_multi_windows = std::min<std::size_t>(6, windows.count);
  const RunResult r = run_postmortem(events, windows, sink, cfg);
  std::printf("postmortem series computed in %.3fs (+%.3fs build)\n",
              r.compute_seconds, r.build_seconds);

  // Locate the crisis: the window with the most activity.
  std::size_t peak = 0;
  std::size_t peak_edges = 0;
  for (std::size_t w = 0; w < windows.count; ++w) {
    const std::size_t e =
        events.slice(windows.start(w), windows.end(w)).size();
    if (e > peak_edges) {
      peak_edges = e;
      peak = w;
    }
  }
  const std::size_t before = peak >= 3 ? peak - 3 : 0;
  std::printf("activity peaks in window %zu (%zu events); comparing with "
              "window %zu\n",
              peak, peak_edges, before);

  // Rank actors in the quiet window and in the crisis window.
  auto rank_of = [&](std::size_t w) {
    auto ranked = sink.window(w);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    std::map<VertexId, std::size_t> rank;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      rank[ranked[i].first] = i + 1;
    }
    return rank;
  };
  const auto rank_before = rank_of(before);
  const auto rank_crisis = rank_of(peak);

  // Actors that jumped the furthest into the top-20 during the crisis.
  struct Riser {
    VertexId actor;
    std::size_t from;
    std::size_t to;
  };
  std::vector<Riser> risers;
  for (const auto& [actor, to] : rank_crisis) {
    if (to > 20) continue;
    const auto it = rank_before.find(actor);
    const std::size_t from =
        it != rank_before.end() ? it->second : rank_before.size() + 1;
    if (from > to) risers.push_back({actor, from, to});
  }
  std::sort(risers.begin(), risers.end(), [](const Riser& a, const Riser& b) {
    return (a.from - a.to) > (b.from - b.to);
  });

  std::printf("\nactors who surged into prominence during the crisis:\n");
  std::printf("  %-12s %-14s %-14s\n", "actor", "rank before", "rank at peak");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, risers.size()); ++i) {
    std::printf("  actor-%-6u %-14zu %-14zu\n", risers[i].actor,
                risers[i].from, risers[i].to);
  }
  if (risers.empty()) {
    std::printf("  (no risers found - try a larger --scale)\n");
  }
  return 0;
}
