// Quickstart: the smallest end-to-end use of the library.
//
//   1. Build (or load) a temporal edge set.
//   2. Choose a sliding-window analysis (delta, sw).
//   3. Run the postmortem PageRank driver with suggested parameters.
//   4. Read the per-window PageRank vectors.
//
// Run with no arguments for a self-contained demo on the paper's worked
// example (Fig. 2), or pass --events <file> to analyze your own data
// ("src dst time" per line).
#include <cstdio>

#include "pmpr.hpp"

using namespace pmpr;

int main(int argc, char** argv) {
  std::string events_path;
  std::int64_t delta = 107;
  std::int64_t sw = 30;
  Options opts(
      "pmpr quickstart - postmortem PageRank over a sliding window");
  opts.add("events", &events_path,
           "temporal edge list file (src dst time per line); empty = demo");
  opts.add("delta", &delta, "window size, in the data's time unit");
  opts.add("sw", &sw, "sliding offset, in the data's time unit");
  if (!opts.parse(argc, argv)) return opts.saw_help() ? 0 : 1;

  // --- 1. The temporal event database -----------------------------------
  TemporalEdgeList events;
  if (events_path.empty()) {
    // The paper's Fig. 2 example: 7 entities, 14 dated relations
    // (timestamps are day numbers), inserted in both directions.
    const std::vector<TemporalEdge> fig2{
        {0, 1, 171}, {2, 4, 175}, {3, 5, 191}, {1, 2, 212}, {1, 3, 222},
        {4, 5, 255}, {1, 6, 274}, {3, 6, 277}, {4, 6, 278}, {5, 6, 281},
        {0, 1, 308}, {0, 2, 309}, {1, 4, 312}, {2, 4, 315}};
    for (const auto& e : fig2) {
      events.add(e.src, e.dst, e.time);
      events.add(e.dst, e.src, e.time);
    }
    std::printf("No --events given: using the paper's Fig. 2 example.\n");
  } else {
    events = TemporalEdgeList::load_text(events_path);
  }
  events.sort_by_time();
  if (events.empty()) {
    std::fprintf(stderr, "no events to analyze\n");
    return 1;
  }

  // --- 2. The sliding-window analysis ------------------------------------
  // Windows of `delta` sliding by `sw`, covering the whole data range.
  const WindowSpec spec =
      WindowSpec::cover(events.min_time(), events.max_time(), delta, sw);
  std::printf("%zu events, %u vertices, %zu windows (delta=%lld, sw=%lld)\n",
              events.size(), events.num_vertices(), spec.count,
              static_cast<long long>(spec.delta),
              static_cast<long long>(spec.sw));

  // --- 3. Postmortem PageRank with suggested parameters ------------------
  const PostmortemConfig cfg = suggest_config_for(events, spec);

  StoreAllSink sink(spec.count);
  const RunResult result = run_postmortem(events, spec, sink, cfg);
  std::printf(
      "postmortem done: build %.3fs, compute %.3fs, %llu iterations total\n",
      result.build_seconds, result.compute_seconds,
      static_cast<unsigned long long>(result.total_iterations));

  // --- 4. Consume the time series ----------------------------------------
  // Print the top-3 vertices of each window.
  for (std::size_t w = 0; w < spec.count; ++w) {
    auto ranked = sink.window(w);  // (vertex, pagerank) pairs
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::printf("window %2zu [%lld..%lld]:", w,
                static_cast<long long>(spec.start(w)),
                static_cast<long long>(spec.end(w)));
    for (std::size_t i = 0; i < std::min<std::size_t>(3, ranked.size()); ++i) {
      std::printf("  v%u=%.4f", ranked[i].first, ranked[i].second);
    }
    std::printf("%s\n", ranked.empty() ? "  (empty window)" : "");
  }
  return 0;
}
